//! Rule `unsafe_audit`: every `unsafe` carries a `SAFETY:` justification,
//! and all of them are inventoried.
//!
//! The workspace's library crates forbid unsafe code outright; the few
//! sanctioned occurrences (test harnesses like the counting allocator)
//! must each explain why they are sound. The rule accepts a justification
//! on the same line, or in the comment block immediately above the
//! `unsafe` keyword (attribute lines like `#[inline]` may sit in
//! between). Doc-style `# Safety` sections count too. Every occurrence —
//! justified or not — is recorded in a machine-readable inventory
//! (`target/cc-lint/unsafe_inventory.json`), so "how much unsafe is there
//! and why" is one artifact, not an audit project.

use crate::lexer::TokenKind;
use crate::report::{Finding, Rule, UnsafeSite};
use crate::rules::{push, FileContext};

pub(crate) fn run(ctx: &FileContext<'_>, out: &mut Vec<Finding>, inventory: &mut Vec<UnsafeSite>) {
    let tokens = &ctx.lexed.tokens;
    for (i, token) in tokens.iter().enumerate() {
        if !token.is_ident("unsafe") {
            continue;
        }
        let context = match tokens.get(i + 1).map(|t| &t.kind) {
            Some(TokenKind::Ident(name))
                if ["fn", "impl", "trait", "extern"].contains(&name.as_str()) =>
            {
                if name == "extern" {
                    "fn".to_string()
                } else {
                    name.clone()
                }
            }
            _ => "block".to_string(),
        };
        let justification = find_justification(ctx, token.line);
        if justification.is_none() {
            push(
                out,
                Rule::UnsafeAudit,
                ctx,
                token.line,
                format!("`unsafe` {context} without a `// SAFETY:` comment on or above it"),
            );
        }
        inventory.push(UnsafeSite {
            file: ctx.path.to_string(),
            line: token.line,
            context,
            justification,
        });
    }
}

/// Finds the `SAFETY:` text covering an `unsafe` at `line`: same-line
/// comment first, then the contiguous comment block directly above
/// (skipping attribute-first lines, stopping at blank lines or code).
fn find_justification(ctx: &FileContext<'_>, line: u32) -> Option<String> {
    let comments = &ctx.lexed.comments;
    for comment in comments {
        if comment.line <= line && line <= comment.end_line && is_safety(&comment.text) {
            return Some(safety_text(&comment.text));
        }
    }
    // Walk upward collecting the adjacent comment block.
    let mut block: Vec<&str> = Vec::new();
    let mut l = line.checked_sub(1)?;
    'walk: while l >= 1 {
        if let Some(first) = ctx.first_on_line.get(&l) {
            // A code line: step over attributes, stop otherwise.
            if first.is_punct('#') {
                l -= 1;
                continue;
            }
            break;
        }
        for comment in comments.iter().rev() {
            if comment.line <= l && l <= comment.end_line {
                block.push(&comment.text);
                l = comment.line.saturating_sub(1);
                continue 'walk;
            }
        }
        break; // blank line: the block above is not adjacent
    }
    // `block` is bottom-up; the SAFETY marker may open a multi-comment
    // block whose later lines continue the sentence.
    let marker = block.iter().rposition(|text| is_safety(text))?;
    let mut parts: Vec<String> = Vec::new();
    parts.push(safety_text(block[marker]));
    for text in block[..marker].iter().rev() {
        parts.push(strip_comment_markers(text));
    }
    let joined = parts.join(" ").trim().to_string();
    Some(joined)
}

fn is_safety(comment: &str) -> bool {
    comment.contains("SAFETY:") || comment.contains("# Safety")
}

/// The justification text of a SAFETY comment, markers stripped.
fn safety_text(comment: &str) -> String {
    let stripped = strip_comment_markers(comment);
    match stripped.find("SAFETY:") {
        Some(at) => stripped[at + "SAFETY:".len()..].trim().to_string(),
        None => stripped,
    }
}

/// Removes `//`-family and `/* */` markers and trims.
fn strip_comment_markers(text: &str) -> String {
    let text = text.trim();
    let text = text
        .strip_prefix("//!")
        .or_else(|| text.strip_prefix("///"))
        .or_else(|| text.strip_prefix("//"))
        .unwrap_or(text);
    let text = text.strip_prefix("/*").unwrap_or(text);
    let text = text.strip_suffix("*/").unwrap_or(text);
    text.trim().to_string()
}

#[cfg(test)]
mod tests {
    use crate::report::Rule;
    use crate::rules::scan_source;

    fn scan(src: &str) -> (usize, Vec<Option<String>>) {
        let scan = scan_source("x.rs", src);
        let findings = scan
            .findings
            .iter()
            .filter(|f| f.rule == Rule::UnsafeAudit)
            .count();
        let sites = scan
            .unsafe_sites
            .iter()
            .map(|s| s.justification.clone())
            .collect();
        (findings, sites)
    }

    #[test]
    fn missing_safety_is_flagged_and_inventoried() {
        let (findings, sites) = scan("fn f(p: *const u8) { unsafe { p.read() }; }\n");
        assert_eq!(findings, 1);
        assert_eq!(sites, vec![None]);
    }

    #[test]
    fn same_line_and_block_above_justify() {
        let src = "\
fn f(p: *const u8) {
    unsafe { p.read() }; // SAFETY: caller guarantees p is valid
}
// SAFETY: the impl upholds the GlobalAlloc contract by
// delegating every call to System.
#[allow(dead_code)]
unsafe fn g() {}
";
        let (findings, sites) = scan(src);
        assert_eq!(findings, 0);
        assert_eq!(sites[0].as_deref(), Some("caller guarantees p is valid"));
        let joined = sites[1].as_deref().unwrap();
        assert!(joined.starts_with("the impl upholds"));
        assert!(joined.contains("delegating every call"));
    }

    #[test]
    fn blank_line_breaks_adjacency() {
        let src = "\
// SAFETY: stale justification far above

unsafe fn g() {}
";
        let (findings, sites) = scan(src);
        assert_eq!(findings, 1);
        assert_eq!(sites, vec![None]);
    }

    #[test]
    fn doc_safety_section_counts() {
        let src = "\
/// Reads a raw pointer.
///
/// # Safety
/// `p` must be valid for reads.
unsafe fn read(p: *const u8) -> u8 { unsafe { *p } }
";
        // Justification is resolved per line: the doc section covers both
        // the `unsafe fn` and the same-line inner block.
        let (findings, sites) = scan(src);
        assert_eq!(sites.len(), 2);
        assert!(sites.iter().all(Option::is_some));
        assert_eq!(findings, 0);
    }

    #[test]
    fn contexts_are_classified() {
        let src = "\
// SAFETY: a
unsafe impl Send for X {}
// SAFETY: b
unsafe fn f() {}
fn g() {
    // SAFETY: c
    unsafe {}
}
";
        let scan = scan_source("x.rs", src);
        let contexts: Vec<&str> = scan
            .unsafe_sites
            .iter()
            .map(|s| s.context.as_str())
            .collect();
        assert_eq!(contexts, ["impl", "fn", "block"]);
        assert!(scan.findings.is_empty());
    }
}
