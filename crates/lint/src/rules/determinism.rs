//! Rule `determinism`: nondeterminism sources where the model's
//! reproducibility claim is load-bearing.
//!
//! The engine's contract (PR 2/3) is that results, reports, and ledger
//! digests are byte-identical for any worker-thread count. That property
//! dies the moment node-program code or the message plane consults a hash
//! map's iteration order, the wall clock, thread identity, or an address.
//! This rule flags those sources inside `NodeProgram` impl bodies (in any
//! file) and everywhere in the runtime's hot modules. Dynamic checks (the
//! ledger digest diff at 1 vs 4 threads) catch a violation only on the
//! inputs CI happens to run; this rule catches the source of one on any
//! input, at review time.

use crate::lexer::{Token, TokenKind};
use crate::report::{Finding, Rule};
use crate::rules::{push, FileContext};

/// Modules in which *all* code is held to the determinism rule (the
/// message plane, the engine driver, the trace plane's hot path —
/// recording must never introduce a result-visible determinism source —
/// and the fault plane: injected faults must be a pure function of model
/// coordinates, never of wall clock or thread timing — and the batching
/// service, whose scheduling decisions must depend only on submission
/// order and round state).
const HOT_MODULES: [&str; 9] = [
    "crates/runtime/src/router.rs",
    "crates/runtime/src/columns.rs",
    "crates/runtime/src/engine.rs",
    "crates/runtime/src/pool.rs",
    "crates/runtime/src/service.rs",
    "crates/trace/src/ring.rs",
    "crates/trace/src/recorder.rs",
    "crates/fault/src/plan.rs",
    "crates/fault/src/injector.rs",
];

/// Hash-order-dependent collections and hashers.
const HASH_ORDER: [&str; 4] = ["HashMap", "HashSet", "RandomState", "DefaultHasher"];

/// Wall-clock types.
const WALL_CLOCK: [&str; 2] = ["Instant", "SystemTime"];

/// Integer types a pointer can be cast to.
const INT_TYPES: [&str; 8] = ["usize", "isize", "u64", "i64", "u32", "i32", "u128", "i128"];

pub(crate) fn run(ctx: &FileContext<'_>, out: &mut Vec<Finding>) {
    let hot_file = HOT_MODULES.iter().any(|m| ctx.path.ends_with(m));
    let in_scope = |line: u32| hot_file || ctx.in_node_program(line);
    let tokens = &ctx.lexed.tokens;
    for (i, token) in tokens.iter().enumerate() {
        if !in_scope(token.line) {
            continue;
        }
        let Some(name) = token.ident() else { continue };
        if HASH_ORDER.contains(&name) {
            push(
                out,
                Rule::Determinism,
                ctx,
                token.line,
                format!(
                    "`{name}` iteration/hashing order is nondeterministic; \
                     use a sorted or index-keyed structure"
                ),
            );
        } else if WALL_CLOCK.contains(&name) {
            push(
                out,
                Rule::Determinism,
                ctx,
                token.line,
                format!("wall clock (`{name}`) read in determinism-critical code"),
            );
        } else if path_is(tokens, i, "std", "time") {
            push(
                out,
                Rule::Determinism,
                ctx,
                token.line,
                "wall clock (`std::time`) read in determinism-critical code".to_string(),
            );
        } else if path_is(tokens, i, "thread", "current") {
            push(
                out,
                Rule::Determinism,
                ctx,
                token.line,
                "thread identity (`thread::current()`) is scheduling-dependent".to_string(),
            );
        } else if name == "as" && casts_pointer_to_int(tokens, i) {
            push(
                out,
                Rule::Determinism,
                ctx,
                token.line,
                "pointer-to-integer cast: addresses vary across runs (ASLR) and threads"
                    .to_string(),
            );
        }
    }
}

/// Whether token `i` starts the path `first::second`.
fn path_is(tokens: &[Token], i: usize, first: &str, second: &str) -> bool {
    tokens[i].is_ident(first)
        && tokens.get(i + 1).is_some_and(|t| t.is_punct(':'))
        && tokens.get(i + 2).is_some_and(|t| t.is_punct(':'))
        && tokens.get(i + 3).is_some_and(|t| t.is_ident(second))
}

/// Whether the `as` at `i` casts a pointer-typed value to an integer type:
/// `expr.as_ptr() as usize`, `ptr as u64`, `&x as *const T as usize`.
/// Lexical heuristic: an integer type follows, and a pointer producer
/// (`as_ptr`/`as_mut_ptr`) or a raw-pointer type (`*const`/`*mut`) appears
/// shortly before, within the same expression.
fn casts_pointer_to_int(tokens: &[Token], i: usize) -> bool {
    let next_is_int = tokens
        .get(i + 1)
        .and_then(Token::ident)
        .is_some_and(|name| INT_TYPES.contains(&name));
    if !next_is_int {
        return false;
    }
    let window_start = i.saturating_sub(8);
    for j in (window_start..i).rev() {
        match &tokens[j].kind {
            TokenKind::Punct(';' | '{' | '}') => return false,
            TokenKind::Ident(name) if name == "as_ptr" || name == "as_mut_ptr" => return true,
            TokenKind::Punct('*')
                if tokens
                    .get(j + 1)
                    .is_some_and(|t| t.is_ident("const") || t.is_ident("mut")) =>
            {
                return true
            }
            _ => {}
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use crate::rules::scan_source;

    const HOT: &str = "crates/runtime/src/router.rs";

    fn messages(path: &str, src: &str) -> Vec<String> {
        scan_source(path, src)
            .findings
            .iter()
            .filter(|f| f.rule == crate::report::Rule::Determinism)
            .map(|f| f.message.clone())
            .collect()
    }

    #[test]
    fn hash_collections_flagged_in_hot_modules_only() {
        let src = "use std::collections::HashMap;\n";
        assert_eq!(messages(HOT, src).len(), 1);
        assert!(messages("crates/graph/src/csr.rs", src).is_empty());
    }

    #[test]
    fn node_program_impls_are_in_scope_anywhere() {
        let src = "\
use std::collections::HashSet;
impl NodeProgram for P {
    fn on_round(&mut self) { let s: HashSet<u32> = HashSet::default(); let _ = s; }
}
";
        let found = messages("crates/anything/src/x.rs", src);
        assert_eq!(found.len(), 1);
        assert!(found[0].contains("HashSet"));
    }

    #[test]
    fn clocks_threads_and_pointer_casts_flagged() {
        let src = "\
fn a() { let t = std::time::Instant::now(); }
fn b() { let id = std::thread::current().id(); }
fn c(v: &[u8]) -> usize { v.as_ptr() as usize }
fn d(x: &u32) -> u64 { x as *const u32 as u64 }
";
        let found = messages(HOT, src);
        assert_eq!(found.len(), 4, "{found:?}");
        assert!(found[0].contains("wall clock"));
        assert!(found[1].contains("thread identity"));
        assert!(found[2].contains("pointer-to-integer"));
    }

    #[test]
    fn ordinary_as_casts_are_fine() {
        let src = "fn f(x: u32) -> usize { x as usize }\n";
        assert!(messages(HOT, src).is_empty());
    }

    #[test]
    fn allow_pragma_suppresses_with_reason() {
        let src = "use std::time::Instant; // cc-lint: allow(determinism) — diagnostics only\n";
        let scan = scan_source(HOT, src);
        assert!(scan.findings.is_empty());
        assert_eq!(scan.suppressed.len(), 1);
    }
}
