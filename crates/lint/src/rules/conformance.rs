//! Rule `model_conformance`: the O(log 𝔫)-bit word budget has exactly one
//! source of truth.
//!
//! The paper's bandwidth claim is only checkable if every width and
//! bandwidth bound in the codebase flows from
//! `cc_runtime::message::word_bits_limit` and the model constructors in
//! `cc-sim` — a hard-coded `16` next to a `bits_limit` variable silently
//! forks the model. This rule flags integer literals that sit in the same
//! expression as a width/bandwidth-named identifier, anywhere outside the
//! designated constants modules, `#[cfg(test)]` bodies, and test/bench/
//! example trees (test code pins concrete numbers on purpose).

use crate::lexer::TokenKind;
use crate::report::{Finding, Rule};
use crate::rules::{push, FileContext};

/// Files allowed to define numeric width/bandwidth bounds: the model's
/// single sources of truth.
const CONSTANTS_MODULES: [&str; 3] = [
    "crates/runtime/src/message.rs",
    "crates/sim/src/constants.rs",
    "crates/sim/src/model.rs",
];

/// Identifier fragments that mark a *message*-width/bandwidth-bound
/// expression. Deliberately specific: plenty of honest identifiers
/// mention bits (`chunk_bits` seed chunking over the 2⁶¹−1 field,
/// `priority_bits`, table column `widths`) without bounding a message.
const NEEDLES: [&str; 6] = [
    "bits_limit",
    "word_bits",
    "width_mask",
    "bandwidth",
    "message_width",
    "too_wide",
];

/// Directory components whose files pin concrete numbers on purpose.
const EXEMPT_DIRS: [&str; 4] = ["tests", "benches", "examples", "fixtures"];

/// How far around a literal the rule looks for a needle identifier,
/// without crossing a statement or block boundary.
const LOOK_BACK: usize = 6;
const LOOK_AHEAD: usize = 3;

pub(crate) fn run(ctx: &FileContext<'_>, out: &mut Vec<Finding>) {
    if CONSTANTS_MODULES.iter().any(|m| ctx.path.ends_with(m)) || in_exempt_dir(ctx.path) {
        return;
    }
    let tokens = &ctx.lexed.tokens;
    for (i, token) in tokens.iter().enumerate() {
        let TokenKind::Int(value) = token.kind else {
            continue;
        };
        // 0 and 1 are initializers and offsets everywhere; a bound they
        // are not.
        if value < 2 || ctx.in_test_code(token.line) {
            continue;
        }
        let start = i.saturating_sub(LOOK_BACK);
        let end = (i + LOOK_AHEAD + 1).min(tokens.len());
        let backward = (start..i).rev();
        let forward = i + 1..end;
        let mut needle = None;
        'directions: for direction in [backward.collect::<Vec<_>>(), forward.collect()] {
            for j in direction {
                match &tokens[j].kind {
                    // Statement/block boundary: the expression ends here.
                    TokenKind::Punct(';' | '{' | '}') => break,
                    TokenKind::Ident(name) => {
                        let lower = name.to_ascii_lowercase();
                        if NEEDLES.iter().any(|n| lower.contains(n)) {
                            needle = Some(name.clone());
                            break 'directions;
                        }
                    }
                    _ => {}
                }
            }
        }
        if let Some(name) = needle {
            push(
                out,
                Rule::ModelConformance,
                ctx,
                token.line,
                format!(
                    "integer literal {value} near `{name}` hard-codes a width/bandwidth \
                     bound; derive it from `word_bits_limit` or the model constants"
                ),
            );
        }
    }
}

fn in_exempt_dir(path: &str) -> bool {
    path.split('/')
        .any(|component| EXEMPT_DIRS.contains(&component))
}

#[cfg(test)]
mod tests {
    use crate::report::Rule;
    use crate::rules::scan_source;

    fn conformance(path: &str, src: &str) -> Vec<String> {
        scan_source(path, src)
            .findings
            .iter()
            .filter(|f| f.rule == Rule::ModelConformance)
            .map(|f| f.message.clone())
            .collect()
    }

    const SRC_FILE: &str = "crates/runtime/src/engine.rs";

    #[test]
    fn hard_coded_width_bounds_are_flagged() {
        let cases = [
            "fn f() { let bits_limit = 16; }\n",
            "fn f(w: u32) -> bool { w > some_width_mask(24) }\n",
            "fn f() { seal(round, my_bandwidth * 32); }\n",
            "fn f(b: u32) -> bool { too_wide(b, 26) }\n",
        ];
        for src in cases {
            assert_eq!(conformance(SRC_FILE, src).len(), 1, "{src}");
        }
    }

    #[test]
    fn derived_bounds_and_unrelated_literals_pass() {
        let cases = [
            "fn f(n: usize) { let bits_limit = word_bits_limit(n); }\n",
            "fn f() { let chunk = 16; let total = 64; }\n",
            "fn f(bits: u32) -> u64 { (1u64 << bits) - 1 }\n",
            "fn f() { let bits_limit = 0; }\n",
            // Honest bit-counts that are not message bounds.
            "fn f() { let chunk_bits = 61; let priority_bits = 63; }\n",
            "fn f() { let widths = [2, 8]; }\n",
        ];
        for src in cases {
            assert_eq!(conformance(SRC_FILE, src).len(), 0, "{src}");
        }
    }

    #[test]
    fn constants_modules_and_test_code_are_exempt() {
        let src = "fn f() { let bits_limit = 16; }\n";
        assert!(conformance("crates/runtime/src/message.rs", src).is_empty());
        assert!(conformance("crates/sim/src/constants.rs", src).is_empty());
        assert!(conformance("crates/runtime/tests/fixture.rs", src).is_empty());
        let in_test_mod = "\
#[cfg(test)]
mod tests {
    fn f() { let bits_limit = 16; }
}
";
        assert!(conformance(SRC_FILE, in_test_mod).is_empty());
    }

    #[test]
    fn statement_boundaries_stop_the_search() {
        // The needle in the previous statement must not taint the literal.
        let src = "fn f() { let bits_limit = limit(); let chunks = 16; }\n";
        assert!(conformance(SRC_FILE, src).is_empty());
    }
}
