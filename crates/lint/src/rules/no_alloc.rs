//! Rule `no_alloc`: no allocator traffic inside marked steady-state spans.
//!
//! PR 3 proved the steady-state round path allocation-free *dynamically*,
//! with a counting global allocator. That proof runs one workload; this
//! rule pins the property at the source level: code between
//! `// cc-lint: region(no_alloc)` and `// cc-lint: end_region` may not
//! mention the allocating constructors and adaptors below. The two checks
//! back each other — the allocator test catches what the lexer cannot see
//! (allocation in a callee), the region catches what a workload does not
//! happen to execute.

use crate::report::{Finding, Rule};
use crate::rules::{push, FileContext};

/// `Type::method` pairs that allocate.
const ALLOCATING_PATHS: [(&str, &str); 7] = [
    ("Vec", "new"),
    ("Vec", "with_capacity"),
    ("Vec", "from"),
    ("Box", "new"),
    ("String", "new"),
    ("String", "from"),
    ("String", "with_capacity"),
];

/// Method/function names that allocate wherever they appear.
const ALLOCATING_CALLS: [&str; 5] = ["collect", "to_vec", "to_string", "clone", "with_capacity"];

/// Macros that allocate.
const ALLOCATING_MACROS: [&str; 2] = ["format", "vec"];

pub(crate) fn run(ctx: &FileContext<'_>, out: &mut Vec<Finding>) {
    let regions: Vec<(u32, u32)> = ctx
        .pragmas
        .regions_of("no_alloc")
        .map(|r| (r.start_line, r.end_line))
        .collect();
    if regions.is_empty() {
        return;
    }
    let in_region = |line: u32| regions.iter().any(|&(lo, hi)| lo <= line && line <= hi);
    let tokens = &ctx.lexed.tokens;
    for (i, token) in tokens.iter().enumerate() {
        if !in_region(token.line) {
            continue;
        }
        let Some(name) = token.ident() else { continue };
        let path_pair = tokens
            .get(i + 3)
            .and_then(|t| t.ident())
            .filter(|_| tokens[i + 1].is_punct(':') && tokens[i + 2].is_punct(':'));
        if let Some(method) = path_pair {
            if ALLOCATING_PATHS.contains(&(name, method)) {
                push(
                    out,
                    Rule::NoAlloc,
                    ctx,
                    token.line,
                    format!("`{name}::{method}` allocates inside a no_alloc region"),
                );
                continue;
            }
        }
        if ALLOCATING_CALLS.contains(&name) {
            push(
                out,
                Rule::NoAlloc,
                ctx,
                token.line,
                format!("`{name}` allocates inside a no_alloc region"),
            );
        } else if ALLOCATING_MACROS.contains(&name)
            && tokens.get(i + 1).is_some_and(|t| t.is_punct('!'))
        {
            push(
                out,
                Rule::NoAlloc,
                ctx,
                token.line,
                format!("`{name}!` allocates inside a no_alloc region"),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::report::Rule;
    use crate::rules::scan_source;

    fn no_alloc_findings(src: &str) -> Vec<String> {
        scan_source("crates/x/src/lib.rs", src)
            .findings
            .iter()
            .filter(|f| f.rule == Rule::NoAlloc)
            .map(|f| f.message.clone())
            .collect()
    }

    #[test]
    fn allocations_inside_regions_are_flagged() {
        let src = "\
// cc-lint: region(no_alloc)
fn hot() {
    let a = Vec::new();
    let b: Vec<u32> = (0..4).collect();
    let c = x.to_vec();
    let d = y.clone();
    let e = format!(\"{a:?}\");
    let f = vec![1, 2];
    let g = Box::new(0);
    let h = String::from(\"s\");
    let i = Vec::with_capacity(8);
}
// cc-lint: end_region
";
        assert_eq!(no_alloc_findings(src).len(), 9);
    }

    #[test]
    fn outside_regions_nothing_is_flagged() {
        let src = "fn cold() { let v = Vec::new(); let s = v.clone(); }\n";
        assert!(no_alloc_findings(src).is_empty());
    }

    #[test]
    fn non_allocating_code_passes_inside_regions() {
        let src = "\
// cc-lint: region(no_alloc)
fn hot(buf: &mut [u32]) {
    buf.fill(0);
    let n = buf.len();
    buf[n - 1] = 7;
    // A comment may say clone or collect freely.
    let s = \"format! in a string is fine\";
    let _ = s;
}
// cc-lint: end_region
";
        assert!(no_alloc_findings(src).is_empty());
    }

    #[test]
    fn vec_macro_without_bang_is_an_ident_not_a_macro() {
        // A variable named `vec` must not trip the macro pattern.
        let src = "\
// cc-lint: region(no_alloc)
fn hot(vec: &[u32]) -> usize { vec.len() }
// cc-lint: end_region
";
        assert!(no_alloc_findings(src).is_empty());
    }
}
