//! The rule engine: per-file context (token stream, pragmas, structural
//! line ranges) and the four rule families that walk it.
//!
//! All rules are purely lexical: they see the token and comment streams of
//! one file at a time, plus a little structure recovered by brace matching
//! (`#[cfg(test)] mod` bodies, `impl … NodeProgram …` bodies). That keeps
//! the pass fast, offline, and dependency-free — and honest about what it
//! can know: rules err conservative, and the `allow` pragma exists for the
//! places where a human can see more than the lexer.

mod conformance;
mod determinism;
mod no_alloc;
mod unsafe_audit;

use std::collections::BTreeMap;

use crate::lexer::{lex, Lexed, Token, TokenKind};
use crate::pragma::{self, FilePragmas};
use crate::report::{Finding, Rule, UnsafeSite};

/// An inclusive 1-based line range.
pub type LineRange = (u32, u32);

/// Everything the rules know about one file.
pub struct FileContext<'a> {
    /// Workspace-relative path with `/` separators.
    pub path: &'a str,
    pub lexed: &'a Lexed,
    pub pragmas: FilePragmas,
    /// Bodies of `#[cfg(test)] mod … { … }` blocks.
    pub test_ranges: Vec<LineRange>,
    /// Bodies of `impl` blocks mentioning `NodeProgram` in their header.
    pub program_ranges: Vec<LineRange>,
    /// First token of each line that has code on it.
    pub first_on_line: BTreeMap<u32, &'a Token>,
}

impl<'a> FileContext<'a> {
    pub fn new(path: &'a str, lexed: &'a Lexed) -> Self {
        let pragmas = pragma::parse(lexed);
        let mut first_on_line = BTreeMap::new();
        for token in &lexed.tokens {
            first_on_line.entry(token.line).or_insert(token);
        }
        FileContext {
            path,
            test_ranges: cfg_test_ranges(lexed),
            program_ranges: node_program_ranges(lexed),
            lexed,
            pragmas,
            first_on_line,
        }
    }

    /// Whether `line` falls inside a `#[cfg(test)]` module body.
    pub fn in_test_code(&self, line: u32) -> bool {
        covers(&self.test_ranges, line)
    }

    /// Whether `line` falls inside a `NodeProgram` impl body.
    pub fn in_node_program(&self, line: u32) -> bool {
        covers(&self.program_ranges, line)
    }
}

fn covers(ranges: &[LineRange], line: u32) -> bool {
    ranges.iter().any(|&(lo, hi)| lo <= line && line <= hi)
}

/// The result of scanning one file.
#[derive(Debug, Default)]
pub struct FileScan {
    /// Findings that stand (not suppressed).
    pub findings: Vec<Finding>,
    /// Findings silenced by an `allow` pragma (kept for reporting counts).
    pub suppressed: Vec<Finding>,
    /// Every `unsafe` occurrence, justified or not.
    pub unsafe_sites: Vec<UnsafeSite>,
}

/// Lexes and scans one file under all rules, splitting findings by
/// suppression. At most one finding per (rule, line) is kept, so an
/// `allow` pragma addresses everything its line triggered.
pub fn scan_source(path: &str, source: &str) -> FileScan {
    let lexed = lex(source);
    let ctx = FileContext::new(path, &lexed);
    let mut raw: Vec<Finding> = Vec::new();
    for error in &ctx.pragmas.errors {
        raw.push(Finding {
            rule: Rule::Pragma,
            file: path.to_string(),
            line: error.line,
            message: error.message.clone(),
        });
    }
    determinism::run(&ctx, &mut raw);
    no_alloc::run(&ctx, &mut raw);
    conformance::run(&ctx, &mut raw);
    let mut scan = FileScan::default();
    unsafe_audit::run(&ctx, &mut raw, &mut scan.unsafe_sites);

    raw.sort_by(|a, b| (a.line, a.rule.name()).cmp(&(b.line, b.rule.name())));
    raw.dedup_by(|a, b| a.rule == b.rule && a.line == b.line);
    for finding in raw {
        if ctx.pragmas.is_allowed(finding.rule.name(), finding.line) {
            scan.suppressed.push(finding);
        } else {
            scan.findings.push(finding);
        }
    }
    scan
}

/// Appends one candidate finding.
pub(crate) fn push(
    out: &mut Vec<Finding>,
    rule: Rule,
    ctx: &FileContext<'_>,
    line: u32,
    message: String,
) {
    out.push(Finding {
        rule,
        file: ctx.path.to_string(),
        line,
        message,
    });
}

/// The index of the `}` matching the `{` at `open`, by depth counting.
pub(crate) fn matching_brace(tokens: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (i, token) in tokens.iter().enumerate().skip(open) {
        match token.kind {
            TokenKind::Punct('{') => depth += 1,
            TokenKind::Punct('}') => {
                depth = depth.checked_sub(1)?;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

/// Line ranges of `#[cfg(test)] mod name { … }` bodies. Only the exact
/// attribute form is recognized — which is the only form the workspace
/// uses — so the rules stay predictable.
fn cfg_test_ranges(lexed: &Lexed) -> Vec<LineRange> {
    let tokens = &lexed.tokens;
    let mut out = Vec::new();
    let mut i = 0;
    while i + 9 < tokens.len() {
        let is_cfg_test = tokens[i].is_punct('#')
            && tokens[i + 1].is_punct('[')
            && tokens[i + 2].is_ident("cfg")
            && tokens[i + 3].is_punct('(')
            && tokens[i + 4].is_ident("test")
            && tokens[i + 5].is_punct(')')
            && tokens[i + 6].is_punct(']')
            && tokens[i + 7].is_ident("mod");
        if is_cfg_test {
            // `mod name {` — the brace is two tokens past `mod`.
            if let Some(open) = tokens[i + 8..].iter().position(|t| t.is_punct('{')) {
                let open = i + 8 + open;
                if let Some(close) = matching_brace(tokens, open) {
                    out.push((tokens[open].line, tokens[close].line));
                    i = open + 1;
                    continue;
                }
            }
        }
        i += 1;
    }
    out
}

/// Line ranges of `impl` bodies whose header (everything between `impl`
/// and the opening `{`) mentions `NodeProgram` — i.e. `impl NodeProgram
/// for X` and, conservatively, `impl<P: NodeProgram> …`.
fn node_program_ranges(lexed: &Lexed) -> Vec<LineRange> {
    let tokens = &lexed.tokens;
    let mut out = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].is_ident("impl") {
            let mut mentions = false;
            let mut j = i + 1;
            while j < tokens.len() && !tokens[j].is_punct('{') && !tokens[j].is_punct(';') {
                if tokens[j].is_ident("NodeProgram") {
                    mentions = true;
                }
                j += 1;
            }
            if mentions && j < tokens.len() && tokens[j].is_punct('{') {
                if let Some(close) = matching_brace(tokens, j) {
                    out.push((tokens[i].line, tokens[close].line));
                    i = j + 1;
                    continue;
                }
            }
            i = j;
        } else {
            i += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_modules_are_found() {
        let src = "\
fn live() {}
#[cfg(test)]
mod tests {
    fn helper() {}
}
fn also_live() {}
";
        let lexed = lex(src);
        let ctx = FileContext::new("x.rs", &lexed);
        assert!(ctx.in_test_code(4));
        assert!(!ctx.in_test_code(1));
        assert!(!ctx.in_test_code(6));
    }

    #[test]
    fn node_program_impls_are_found() {
        let src = "\
struct P;
impl NodeProgram for P {
    fn on_round(&mut self) {}
}
impl P {
    fn other(&self) {}
}
";
        let lexed = lex(src);
        let ctx = FileContext::new("x.rs", &lexed);
        assert!(ctx.in_node_program(3));
        assert!(!ctx.in_node_program(6));
    }

    #[test]
    fn one_finding_per_rule_and_line() {
        // Two determinism triggers on one line collapse into one finding.
        let src = "\
impl NodeProgram for P {
    fn f(&self) { let _ = (std::time::Instant::now(), std::time::Instant::now()); }
}
";
        let scan = scan_source("x.rs", src);
        assert_eq!(scan.findings.len(), 1);
    }
}
