//! A small, self-contained Rust lexer that is exact about what the rules
//! care about: which text is *code* and which text is comment or literal.
//!
//! The rule engine never wants to see inside a string, a raw string, a
//! byte/C string, a char literal, or a comment — a `HashMap` mentioned in a
//! doc comment is not a nondeterminism source. The lexer therefore splits a
//! source file into a token stream (identifiers, integer/float literals,
//! lifetimes, punctuation, and opaque string/char tokens) and a parallel
//! comment stream (kept verbatim, because pragmas and `SAFETY:`
//! justifications live in comments). It handles nested block comments,
//! escapes, raw strings with arbitrary `#` fences, and the `'a`-lifetime vs
//! `'a'`-char ambiguity. Malformed input (say, an unterminated string) is
//! consumed to end of file rather than panicking: a lint pass must survive
//! any bytes it is pointed at.

/// One code token. Strings, chars, and numbers are opaque: the rules only
/// need to know they are *not* identifiers (except integer literals, whose
/// value the model-conformance rule inspects).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`unsafe`, `Vec`, `collect`, …).
    Ident(String),
    /// An integer literal and its value (saturating at `u128::MAX`;
    /// base prefixes, `_` separators, and type suffixes are handled).
    Int(u128),
    /// A float literal (value irrelevant to every rule).
    Float,
    /// A string literal of any flavor (`"…"`, `r#"…"#`, `b"…"`, `c"…"`).
    Str,
    /// A character or byte literal (`'x'`, `b'\n'`).
    Char,
    /// A lifetime (`'a`, `'_`, `'static`).
    Lifetime,
    /// A single punctuation character (`::` arrives as two `:` tokens).
    Punct(char),
}

/// A token plus the 1-based line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    pub line: u32,
}

impl Token {
    /// The identifier text, if this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokenKind::Ident(name) => Some(name),
            _ => None,
        }
    }

    /// Whether this token is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.ident() == Some(name)
    }

    /// Whether this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct(c)
    }
}

/// One comment, verbatim (without the `//` / `/* */` markers trimmed — the
/// raw text including markers is kept so pragma parsing can be exact about
/// what it accepts).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// Full comment text including the `//` or `/* */` markers.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
    /// 1-based line the comment ends on (differs only for block comments).
    pub end_line: u32,
    /// Whether this is a `/* … */` block comment.
    pub block: bool,
}

/// The lexed form of one source file: code tokens and comments, each in
/// source order.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

impl Lexed {
    /// The last line number seen (tokens or comments), i.e. roughly the
    /// file length in lines.
    pub fn last_line(&self) -> u32 {
        let t = self.tokens.last().map_or(0, |t| t.line);
        let c = self.comments.last().map_or(0, |c| c.end_line);
        t.max(c)
    }
}

struct Cursor {
    chars: Vec<char>,
    pos: usize,
    line: u32,
}

impl Cursor {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek_at(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
            }
        }
        c
    }

    fn eat_while(&mut self, pred: impl Fn(char) -> bool) -> String {
        let mut out = String::new();
        while let Some(c) = self.peek() {
            if pred(c) {
                out.push(c);
                self.bump();
            } else {
                break;
            }
        }
        out
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `source` into tokens and comments. Never panics; malformed
/// constructs are consumed as far as they reach.
pub fn lex(source: &str) -> Lexed {
    let mut cur = Cursor {
        chars: source.chars().collect(),
        pos: 0,
        line: 1,
    };
    let mut out = Lexed::default();
    while let Some(c) = cur.peek() {
        let line = cur.line;
        match c {
            _ if c.is_whitespace() => {
                cur.bump();
            }
            '/' if cur.peek_at(1) == Some('/') => {
                let text = cur.eat_while(|c| c != '\n');
                out.comments.push(Comment {
                    text,
                    line,
                    end_line: line,
                    block: false,
                });
            }
            '/' if cur.peek_at(1) == Some('*') => {
                let text = eat_block_comment(&mut cur);
                out.comments.push(Comment {
                    text,
                    line,
                    end_line: cur.line,
                    block: true,
                });
            }
            '"' => {
                eat_string(&mut cur);
                out.tokens.push(Token {
                    kind: TokenKind::Str,
                    line,
                });
            }
            '\'' => {
                let kind = eat_char_or_lifetime(&mut cur);
                out.tokens.push(Token { kind, line });
            }
            _ if c.is_ascii_digit() => {
                let kind = eat_number(&mut cur);
                out.tokens.push(Token { kind, line });
            }
            _ if is_ident_start(c) => {
                let name = cur.eat_while(is_ident_continue);
                let kind = match string_prefix(&name, &cur) {
                    Some(true) => {
                        if eat_raw_string(&mut cur) {
                            TokenKind::Str
                        } else {
                            // `r#ident` (raw identifier): the fence was
                            // consumed, but the prefix is still an ident.
                            TokenKind::Ident(name)
                        }
                    }
                    Some(false) => {
                        if cur.peek() == Some('"') {
                            eat_string(&mut cur);
                            TokenKind::Str
                        } else {
                            // `b'x'` byte char.
                            eat_char_or_lifetime(&mut cur);
                            TokenKind::Char
                        }
                    }
                    None => TokenKind::Ident(name),
                };
                out.tokens.push(Token { kind, line });
            }
            _ => {
                cur.bump();
                out.tokens.push(Token {
                    kind: TokenKind::Punct(c),
                    line,
                });
            }
        }
    }
    out
}

/// If the identifier just lexed is a string/char prefix (`r`, `b`, `c`,
/// `br`, `cr`) immediately followed by its literal, says so: `Some(true)`
/// for raw flavors, `Some(false)` for escaped flavors.
fn string_prefix(name: &str, cur: &Cursor) -> Option<bool> {
    let next = cur.peek();
    match name {
        "r" | "br" | "cr" if next == Some('"') || next == Some('#') => Some(true),
        "b" | "c" if next == Some('"') => Some(false),
        "b" if next == Some('\'') => Some(false),
        _ => None,
    }
}

/// Consumes a (possibly nested) block comment, `/*` already peeked.
fn eat_block_comment(cur: &mut Cursor) -> String {
    let mut text = String::new();
    let mut depth = 0usize;
    while let Some(c) = cur.peek() {
        if c == '/' && cur.peek_at(1) == Some('*') {
            depth += 1;
            text.push_str("/*");
            cur.bump();
            cur.bump();
        } else if c == '*' && cur.peek_at(1) == Some('/') {
            depth -= 1;
            text.push_str("*/");
            cur.bump();
            cur.bump();
            if depth == 0 {
                break;
            }
        } else {
            text.push(c);
            cur.bump();
        }
    }
    text
}

/// Consumes an escaped string literal, opening `"` still pending.
fn eat_string(cur: &mut Cursor) {
    cur.bump(); // opening quote
    while let Some(c) = cur.bump() {
        match c {
            '\\' => {
                cur.bump();
            }
            '"' => break,
            _ => {}
        }
    }
}

/// Consumes a raw string literal: zero or more `#`, a `"`, then text until
/// `"` followed by the same number of `#`. Returns false if no string
/// actually starts here (e.g. the `r#` of a raw identifier).
fn eat_raw_string(cur: &mut Cursor) -> bool {
    let mut fences = 0usize;
    while cur.peek() == Some('#') {
        fences += 1;
        cur.bump();
    }
    if cur.peek() != Some('"') {
        return false; // not a raw string (e.g. `r#ident`); fence is gone
    }
    cur.bump();
    'scan: while let Some(c) = cur.bump() {
        if c == '"' {
            for ahead in 0..fences {
                if cur.peek_at(ahead) != Some('#') {
                    continue 'scan;
                }
            }
            for _ in 0..fences {
                cur.bump();
            }
            break;
        }
    }
    true
}

/// Disambiguates `'a'` (char) from `'a` (lifetime), opening `'` pending.
fn eat_char_or_lifetime(cur: &mut Cursor) -> TokenKind {
    cur.bump(); // the quote
    let first = cur.peek();
    if let Some(c) = first {
        if is_ident_start(c) && cur.peek_at(1) != Some('\'') {
            cur.eat_while(is_ident_continue);
            return TokenKind::Lifetime;
        }
    }
    // A char literal: one escaped or plain character, then the close quote.
    if cur.bump() == Some('\\') {
        // Escape: may be `\u{…}` with several chars.
        if cur.peek() == Some('u') {
            cur.bump();
            if cur.peek() == Some('{') {
                while let Some(c) = cur.bump() {
                    if c == '}' {
                        break;
                    }
                }
            }
        } else {
            cur.bump();
        }
    }
    if cur.peek() == Some('\'') {
        cur.bump();
    }
    TokenKind::Char
}

/// Consumes a numeric literal, classifying int vs float and computing the
/// integer value (saturating).
fn eat_number(cur: &mut Cursor) -> TokenKind {
    let first = cur.bump().unwrap_or('0');
    let mut digits = String::new();
    digits.push(first);
    let radix: u32 = if first == '0' {
        match cur.peek() {
            Some('x' | 'X') => {
                cur.bump();
                digits.clear();
                16
            }
            Some('o' | 'O') => {
                cur.bump();
                digits.clear();
                8
            }
            Some('b' | 'B') => {
                cur.bump();
                digits.clear();
                2
            }
            _ => 10,
        }
    } else {
        10
    };
    let mut float = false;
    while let Some(c) = cur.peek() {
        if c == '_' {
            cur.bump();
        } else if c.is_digit(radix) || (radix == 16 && c.is_ascii_hexdigit()) {
            digits.push(c);
            cur.bump();
        } else if radix == 10 && c == '.' {
            // `1..n` is a range, not a float; `1.max(2)` is a method call.
            match cur.peek_at(1) {
                Some(next) if next.is_ascii_digit() => {
                    float = true;
                    cur.bump();
                }
                _ => break,
            }
        } else if radix == 10 && (c == 'e' || c == 'E') {
            // Exponent only if followed by a digit or a sign.
            match cur.peek_at(1) {
                Some(next) if next.is_ascii_digit() || next == '+' || next == '-' => {
                    float = true;
                    cur.bump();
                    cur.bump();
                }
                _ => break,
            }
        } else if is_ident_continue(c) {
            // Type suffix (`u32`, `usize`, `f64`) — consume, classify by it.
            let suffix = cur.eat_while(is_ident_continue);
            if suffix.starts_with('f') {
                float = true;
            }
            break;
        } else {
            break;
        }
    }
    if float {
        return TokenKind::Float;
    }
    let mut value: u128 = 0;
    for d in digits.chars() {
        let digit = d
            .to_digit(if radix == 16 { 16 } else { radix })
            .unwrap_or(0);
        value = value
            .saturating_mul(u128::from(radix))
            .saturating_add(u128::from(digit));
    }
    TokenKind::Int(value)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter_map(|t| t.ident().map(str::to_string))
            .collect()
    }

    #[test]
    fn idents_and_puncts_tokenize_with_lines() {
        let lexed = lex("fn main() {\n    x::y\n}\n");
        assert_eq!(
            idents("fn main() {\n    x::y\n}\n"),
            ["fn", "main", "x", "y"]
        );
        let x = lexed.tokens.iter().find(|t| t.is_ident("x")).unwrap();
        assert_eq!(x.line, 2);
        assert!(lexed.tokens.iter().any(|t| t.is_punct(':')));
    }

    #[test]
    fn comments_are_not_tokens() {
        let lexed = lex("// HashMap here\n/* and /* nested */ here */ code\n");
        assert_eq!(lexed.comments.len(), 2);
        assert!(lexed.comments[1].block);
        assert_eq!(lexed.comments[1].end_line, 2);
        assert_eq!(
            lexed.tokens.iter().filter_map(|t| t.ident()).next(),
            Some("code")
        );
    }

    #[test]
    fn strings_of_every_flavor_are_opaque() {
        let src = r####"let a = "HashMap \" escaped"; let b = r#"raw "HashMap" here"#;
let c = b"bytes"; let d = br##"raw bytes"##; let e = 'x'; let f = b'\n';"####;
        let lexed = lex(src);
        assert!(!lexed.tokens.iter().any(|t| t.is_ident("HashMap")));
        assert_eq!(
            lexed
                .tokens
                .iter()
                .filter(|t| t.kind == TokenKind::Str)
                .count(),
            4
        );
        assert_eq!(
            lexed
                .tokens
                .iter()
                .filter(|t| t.kind == TokenKind::Char)
                .count(),
            2
        );
    }

    #[test]
    fn lifetimes_are_not_chars() {
        let lexed = lex("fn f<'a>(x: &'a str) -> &'static str { 'q' ; x }");
        let lifetimes = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .count();
        let chars = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Char)
            .count();
        assert_eq!(lifetimes, 3);
        assert_eq!(chars, 1);
    }

    #[test]
    fn numbers_parse_values_and_classify_floats() {
        let lexed = lex("16 0x10 0b1_0000 0o20 1_000usize 2.5 1e9 1.0f64 0..n 1.max(2)");
        let ints: Vec<u128> = lexed
            .tokens
            .iter()
            .filter_map(|t| match t.kind {
                TokenKind::Int(v) => Some(v),
                _ => None,
            })
            .collect();
        assert_eq!(ints, [16, 16, 16, 16, 1000, 0, 1, 2]);
        let floats = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Float)
            .count();
        assert_eq!(floats, 3);
        // `0..n`: the range survives as two `.` puncts.
        assert!(lexed.tokens.iter().any(|t| t.is_punct('.')));
    }

    #[test]
    fn unterminated_constructs_do_not_panic() {
        lex("let s = \"never closed");
        lex("/* never closed");
        lex("let r = r#\"never closed");
        lex("'");
    }

    #[test]
    fn raw_identifier_fence_without_quote_is_left_alone() {
        // `r#ident` (a raw identifier) must not be eaten as a string.
        let lexed = lex("let r#type = 1;");
        assert!(lexed.tokens.iter().any(|t| t.is_ident("r")));
        assert!(lexed.tokens.iter().any(|t| t.is_ident("type")));
    }
}
