//! **cc-lint** — the workspace's own static-analysis pass.
//!
//! Clippy knows Rust; it does not know the CONGESTED CLIQUE. This crate
//! checks the model-specific invariants the reproduction's claims rest on,
//! at the source level, before any test runs:
//!
//! - **`determinism`** — no nondeterminism sources (hash-order iteration,
//!   wall clocks, thread identity, pointer-value casts) inside
//!   [`NodeProgram`](../cc_runtime/program/trait.NodeProgram.html) impls or
//!   the runtime's hot modules, where byte-identical replay across thread
//!   counts is contractual.
//! - **`no_alloc`** — no allocating constructors/adaptors inside
//!   `// cc-lint: region(no_alloc)` spans, the source-level face of the
//!   counting-allocator proof.
//! - **`unsafe_audit`** — every `unsafe` carries a `SAFETY:` comment, and
//!   all of them are inventoried to
//!   `target/cc-lint/unsafe_inventory.json`.
//! - **`model_conformance`** — width/bandwidth bounds are derived from
//!   `word_bits_limit`/the model constants, never hard-coded.
//!
//! Findings can be suppressed inline with
//! `// cc-lint: allow(rule_name) — reason`; a malformed pragma is itself a
//! finding. The `cc-lint` binary reports human-readably and as JSON, and
//! `--deny` turns any finding into a nonzero exit for CI. Everything is
//! hand-rolled on a comment/string/raw-string-aware lexer — no syn, no
//! vendored parser, fully offline.

pub mod lexer;
pub mod pragma;
pub mod report;
pub mod rules;
pub mod workspace;

use std::fs;
use std::io;
use std::path::Path;

pub use report::{Finding, Rule, UnsafeSite};
pub use rules::{scan_source, FileScan};

/// The result of linting a whole workspace.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Standing findings, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Findings silenced by `allow` pragmas, same order.
    pub suppressed: Vec<Finding>,
    /// Every `unsafe` occurrence in the scanned sources.
    pub unsafe_sites: Vec<UnsafeSite>,
    /// Number of files scanned.
    pub files: usize,
}

impl LintReport {
    /// Whether the workspace is clean (nothing to deny).
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Lints every workspace-owned source file under `root`.
///
/// # Errors
///
/// Returns any I/O error raised while walking or reading sources.
pub fn lint_workspace(root: &Path) -> io::Result<LintReport> {
    let sources = workspace::workspace_sources(root)?;
    let mut report = LintReport {
        files: sources.len(),
        ..LintReport::default()
    };
    for path in &sources {
        let text = fs::read_to_string(root.join(path))?;
        let scan = scan_source(path, &text);
        report.findings.extend(scan.findings);
        report.suppressed.extend(scan.suppressed);
        report.unsafe_sites.extend(scan.unsafe_sites);
    }
    // Files come in sorted; per-file findings are line-sorted already.
    Ok(report)
}
