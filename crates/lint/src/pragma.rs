//! `cc-lint:` control comments: region markers and inline suppressions.
//!
//! Three directives are recognized, always inside an ordinary comment:
//!
//! - `// cc-lint: region(no_alloc)` … `// cc-lint: end_region` bracket a
//!   **region**: a span of lines a region-scoped rule (today: `no_alloc`)
//!   applies to. Regions may not nest and must be closed in the same file.
//! - `// cc-lint: allow(rule_name) — reason` suppresses findings of
//!   `rule_name` on the pragma's *target line*: the pragma's own line if it
//!   trails code, otherwise the next line that has code on it. A reason is
//!   required — a suppression nobody can audit is itself a finding.
//!
//! Anything else after a `cc-lint:` marker is a malformed pragma and is
//! reported as a finding of the `pragma` rule: a typo must never silently
//! suppress nothing.

use crate::lexer::Lexed;

/// One parsed `allow(...)` suppression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allow {
    /// The rule being suppressed.
    pub rule: String,
    /// The human justification after the rule name.
    pub reason: String,
    /// The line whose findings are suppressed.
    pub target_line: u32,
    /// The line the pragma comment itself starts on.
    pub pragma_line: u32,
}

/// One closed region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Region {
    /// The region kind (`no_alloc`).
    pub kind: String,
    /// First line of the region (the opening marker's line).
    pub start_line: u32,
    /// Last line of the region (the closing marker's line).
    pub end_line: u32,
}

/// A problem with the pragmas themselves (reported under the `pragma`
/// rule).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PragmaError {
    pub line: u32,
    pub message: String,
}

/// Everything the pragma comments of one file said.
#[derive(Debug, Default)]
pub struct FilePragmas {
    pub allows: Vec<Allow>,
    pub regions: Vec<Region>,
    pub errors: Vec<PragmaError>,
}

impl FilePragmas {
    /// Whether a finding of `rule` at `line` is suppressed by an `allow`.
    pub fn is_allowed(&self, rule: &str, line: u32) -> bool {
        self.allows
            .iter()
            .any(|a| a.target_line == line && a.rule == rule)
    }

    /// The regions of the given kind, as inclusive line ranges.
    pub fn regions_of<'a>(&'a self, kind: &'a str) -> impl Iterator<Item = &'a Region> + 'a {
        self.regions.iter().filter(move |r| r.kind == kind)
    }
}

/// The marker every pragma comment carries.
const MARKER: &str = "cc-lint:";

/// Region kinds the rules understand.
const REGION_KINDS: [&str; 1] = ["no_alloc"];

/// Rule names an `allow` may suppress.
pub const RULE_NAMES: [&str; 5] = [
    "determinism",
    "no_alloc",
    "unsafe_audit",
    "model_conformance",
    "pragma",
];

/// Parses all pragmas out of a lexed file.
pub fn parse(lexed: &Lexed) -> FilePragmas {
    let mut out = FilePragmas::default();
    // Lines that carry at least one code token, for allow-target
    // resolution, sorted (tokens are emitted in source order).
    let code_lines: Vec<u32> = lexed.tokens.iter().map(|t| t.line).collect();
    let mut open: Option<(String, u32)> = None;
    for comment in &lexed.comments {
        // Pragmas live in plain comments only: doc comments *describe*
        // tooling (this module's own docs quote the syntax), they do not
        // direct it.
        if is_doc_comment(&comment.text) {
            continue;
        }
        let Some(at) = comment.text.find(MARKER) else {
            continue;
        };
        let directive = comment.text[at + MARKER.len()..].trim();
        let directive = directive.trim_end_matches("*/").trim();
        if let Some(kind) = capture(directive, "region") {
            if !REGION_KINDS.contains(&kind) {
                out.errors.push(PragmaError {
                    line: comment.line,
                    message: format!("unknown region kind `{kind}`"),
                });
            } else if let Some((open_kind, open_line)) = &open {
                out.errors.push(PragmaError {
                    line: comment.line,
                    message: format!(
                        "region({kind}) opened while region({open_kind}) from line {open_line} \
                         is still open (regions do not nest)"
                    ),
                });
            } else {
                open = Some((kind.to_string(), comment.line));
            }
        } else if directive == "end_region" {
            match open.take() {
                Some((kind, start_line)) => out.regions.push(Region {
                    kind,
                    start_line,
                    end_line: comment.end_line,
                }),
                None => out.errors.push(PragmaError {
                    line: comment.line,
                    message: "end_region without an open region".to_string(),
                }),
            }
        } else if let Some(rule) = capture(directive, "allow") {
            let reason = directive[directive.find(')').map_or(0, |i| i + 1)..]
                .trim_start_matches([' ', '\u{2014}', '-', ':', '\u{2013}'])
                .trim();
            if !RULE_NAMES.contains(&rule) {
                out.errors.push(PragmaError {
                    line: comment.line,
                    message: format!("allow of unknown rule `{rule}`"),
                });
            } else if reason.is_empty() {
                out.errors.push(PragmaError {
                    line: comment.line,
                    message: format!("allow({rule}) without a reason"),
                });
            } else {
                let target_line = allow_target(&code_lines, comment.line, comment.end_line);
                out.allows.push(Allow {
                    rule: rule.to_string(),
                    reason: reason.to_string(),
                    target_line,
                    pragma_line: comment.line,
                });
            }
        } else {
            out.errors.push(PragmaError {
                line: comment.line,
                message: format!("malformed cc-lint pragma `{directive}`"),
            });
        }
    }
    if let Some((kind, line)) = open {
        out.errors.push(PragmaError {
            line,
            message: format!("region({kind}) is never closed"),
        });
    }
    out
}

/// Whether a comment (markers included) is a doc comment (`///`, `//!`,
/// `/**`, `/*!`).
fn is_doc_comment(text: &str) -> bool {
    text.starts_with("///")
        || text.starts_with("//!")
        || text.starts_with("/**")
        || text.starts_with("/*!")
}

/// Captures the parenthesized argument of `name(arg)` at the start of a
/// directive, if present.
fn capture<'a>(directive: &'a str, name: &str) -> Option<&'a str> {
    let rest = directive.strip_prefix(name)?.trim_start();
    let rest = rest.strip_prefix('(')?;
    let close = rest.find(')')?;
    Some(rest[..close].trim())
}

/// The line an `allow` pragma suppresses: its own line if that line has
/// code on it, otherwise the next line that does.
fn allow_target(code_lines: &[u32], pragma_line: u32, pragma_end: u32) -> u32 {
    if code_lines.binary_search(&pragma_line).is_ok() {
        return pragma_line;
    }
    let next = code_lines.partition_point(|&l| l <= pragma_end);
    code_lines.get(next).copied().unwrap_or(pragma_line)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn regions_parse_with_line_spans() {
        let src = "\
fn ok() {}
// cc-lint: region(no_alloc)
fn hot() {}
// cc-lint: end_region
fn cold() {}
";
        let pragmas = parse(&lex(src));
        assert!(pragmas.errors.is_empty());
        assert_eq!(
            pragmas.regions,
            vec![Region {
                kind: "no_alloc".to_string(),
                start_line: 2,
                end_line: 4,
            }]
        );
    }

    #[test]
    fn allow_targets_trailing_and_standalone_forms() {
        let src = "\
use std::time::Instant; // cc-lint: allow(determinism) — diagnostics only
// cc-lint: allow(no_alloc) — startup path
let v = Vec::new();
";
        let pragmas = parse(&lex(src));
        assert!(pragmas.errors.is_empty());
        assert!(pragmas.is_allowed("determinism", 1));
        assert!(pragmas.is_allowed("no_alloc", 3));
        assert!(!pragmas.is_allowed("determinism", 3));
        assert_eq!(pragmas.allows[1].reason, "startup path");
    }

    #[test]
    fn malformed_pragmas_are_findings() {
        let src = "\
// cc-lint: alow(determinism) — typo
// cc-lint: allow(no_such_rule) — bad
// cc-lint: allow(determinism)
// cc-lint: region(no_such_region)
// cc-lint: end_region
";
        let pragmas = parse(&lex(src));
        assert_eq!(pragmas.errors.len(), 5);
        assert!(pragmas.allows.is_empty());
        assert!(pragmas.regions.is_empty());
    }

    #[test]
    fn unclosed_and_nested_regions_are_findings() {
        let nested = "\
// cc-lint: region(no_alloc)
// cc-lint: region(no_alloc)
// cc-lint: end_region
";
        let pragmas = parse(&lex(nested));
        assert_eq!(pragmas.errors.len(), 1);
        assert_eq!(pragmas.regions.len(), 1);

        let unclosed = "// cc-lint: region(no_alloc)\nfn f() {}\n";
        let pragmas = parse(&lex(unclosed));
        assert_eq!(pragmas.errors.len(), 1);
        assert!(pragmas.errors[0].message.contains("never closed"));
    }

    #[test]
    fn ordinary_comments_are_ignored() {
        let src = "// nothing to see\n/* cc-lint: allow(determinism) — in a block */ fn f() {}\n";
        let pragmas = parse(&lex(src));
        assert!(pragmas.errors.is_empty());
        assert!(pragmas.is_allowed("determinism", 2));
    }
}
