//! Findings, the unsafe inventory, and the human/JSON reporters.
//!
//! Serialization is hand-rolled for the same reason as `cc-bench`'s
//! records: the build environment is offline, the shapes are flat, and a
//! page of formatter keeps the workspace free of a vendored `serde`.

use std::fmt;

/// The rule families (plus the meta-rule for broken pragmas).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    /// Nondeterminism sources in `NodeProgram` impls and runtime hot
    /// modules.
    Determinism,
    /// Allocation in a `region(no_alloc)` span.
    NoAlloc,
    /// `unsafe` without a `SAFETY:` justification.
    UnsafeAudit,
    /// Width/bandwidth bounds hard-coded outside the model constants.
    ModelConformance,
    /// A malformed `cc-lint:` pragma.
    Pragma,
}

impl Rule {
    /// The rule's name as used in `allow(...)` pragmas and reports.
    pub fn name(self) -> &'static str {
        match self {
            Rule::Determinism => "determinism",
            Rule::NoAlloc => "no_alloc",
            Rule::UnsafeAudit => "unsafe_audit",
            Rule::ModelConformance => "model_conformance",
            Rule::Pragma => "pragma",
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One finding: a rule violated at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub rule: Rule,
    /// Workspace-relative path with `/` separators.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// One `unsafe` occurrence, justified or not. Every occurrence is
/// inventoried — the finding for a missing justification is separate, so
/// the inventory is always the complete audit surface.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnsafeSite {
    pub file: String,
    pub line: u32,
    /// What the `unsafe` keyword introduces: `fn`, `impl`, `trait`, or
    /// `block`.
    pub context: String,
    /// The `SAFETY:` text, if present.
    pub justification: Option<String>,
}

/// Escapes a string for inclusion in a JSON string literal.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Serializes findings as a JSON array (stable field order, one object per
/// line — diffs stay readable in CI artifacts).
pub fn findings_json(findings: &[Finding]) -> String {
    let mut out = String::from("[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n  {{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"message\":\"{}\"}}",
            f.rule,
            escape_json(&f.file),
            f.line,
            escape_json(&f.message)
        ));
    }
    out.push_str("\n]\n");
    out
}

/// Serializes the unsafe inventory as a JSON array.
pub fn inventory_json(sites: &[UnsafeSite]) -> String {
    let mut out = String::from("[");
    for (i, s) in sites.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let justification = match &s.justification {
            Some(text) => format!("\"{}\"", escape_json(text)),
            None => "null".to_string(),
        };
        out.push_str(&format!(
            "\n  {{\"file\":\"{}\",\"line\":{},\"context\":\"{}\",\"justification\":{}}}",
            escape_json(&s.file),
            s.line,
            escape_json(&s.context),
            justification
        ));
    }
    out.push_str("\n]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn findings_render_human_and_json() {
        let finding = Finding {
            rule: Rule::Determinism,
            file: "crates/runtime/src/engine.rs".to_string(),
            line: 30,
            message: "wall clock (`Instant`) in a hot module".to_string(),
        };
        assert_eq!(
            finding.to_string(),
            "crates/runtime/src/engine.rs:30: [determinism] wall clock (`Instant`) in a hot module"
        );
        let json = findings_json(std::slice::from_ref(&finding));
        assert!(json.contains("\"rule\":\"determinism\""));
        assert!(json.contains("\"line\":30"));
        assert!(findings_json(&[]).starts_with('['));
    }

    #[test]
    fn inventory_escapes_and_handles_missing_justification() {
        let sites = [
            UnsafeSite {
                file: "a.rs".to_string(),
                line: 1,
                context: "block".to_string(),
                justification: Some("caller upholds \"contract\"".to_string()),
            },
            UnsafeSite {
                file: "b.rs".to_string(),
                line: 2,
                context: "fn".to_string(),
                justification: None,
            },
        ];
        let json = inventory_json(&sites);
        assert!(json.contains("\\\"contract\\\""));
        assert!(json.contains("\"justification\":null"));
    }
}
