//! The `cc-lint` binary: lint the workspace, write the JSON artifacts,
//! and (with `--deny`) gate CI on a clean tree.
//!
//! ```text
//! cc-lint [--root PATH] [--deny] [--quiet]
//! ```
//!
//! - `--root PATH` — workspace root (default: walk up from the current
//!   directory to the first `Cargo.toml` declaring `[workspace]`).
//! - `--deny` — exit 1 if any finding stands (suppressed findings and the
//!   unsafe inventory never fail the gate).
//! - `--quiet` — print only findings and the one-line summary.
//!
//! Always writes `target/cc-lint/findings.json` and
//! `target/cc-lint/unsafe_inventory.json` under the root, so CI can
//! archive the full audit surface even on green runs.

use std::collections::BTreeMap;
use std::env;
use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

use cc_lint::workspace::find_workspace_root;
use cc_lint::{lint_workspace, report};

fn main() -> ExitCode {
    let mut deny = false;
    let mut quiet = false;
    let mut root: Option<PathBuf> = None;
    let mut args = env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny" => deny = true,
            "--quiet" => quiet = true,
            "--root" => match args.next() {
                Some(path) => root = Some(PathBuf::from(path)),
                None => return usage("--root needs a path"),
            },
            "--help" | "-h" => {
                println!("usage: cc-lint [--root PATH] [--deny] [--quiet]");
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }
    let root = match root {
        Some(r) => r,
        None => {
            let cwd = env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            match find_workspace_root(&cwd) {
                Some(r) => r,
                None => return usage("no workspace root found; pass --root"),
            }
        }
    };

    let lint = match lint_workspace(&root) {
        Ok(lint) => lint,
        Err(err) => {
            eprintln!("cc-lint: failed to scan {}: {err}", root.display());
            return ExitCode::from(2);
        }
    };

    for finding in &lint.findings {
        println!("{finding}");
    }
    if !quiet {
        for finding in &lint.suppressed {
            println!("allowed: {finding}");
        }
    }

    let out_dir = root.join("target").join("cc-lint");
    let written = fs::create_dir_all(&out_dir)
        .and_then(|()| {
            fs::write(
                out_dir.join("findings.json"),
                report::findings_json(&lint.findings),
            )
        })
        .and_then(|()| {
            fs::write(
                out_dir.join("unsafe_inventory.json"),
                report::inventory_json(&lint.unsafe_sites),
            )
        });
    if let Err(err) = written {
        eprintln!("cc-lint: failed to write {}: {err}", out_dir.display());
        return ExitCode::from(2);
    }

    let mut by_rule: BTreeMap<&str, usize> = BTreeMap::new();
    for finding in &lint.findings {
        *by_rule.entry(finding.rule.name()).or_insert(0) += 1;
    }
    let breakdown = if by_rule.is_empty() {
        String::new()
    } else {
        let parts: Vec<String> = by_rule
            .iter()
            .map(|(rule, count)| format!("{rule}: {count}"))
            .collect();
        format!(" ({})", parts.join(", "))
    };
    println!(
        "cc-lint: {} files, {} findings{breakdown}, {} allowed, {} unsafe sites inventoried",
        lint.files,
        lint.findings.len(),
        lint.suppressed.len(),
        lint.unsafe_sites.len(),
    );

    if deny && !lint.is_clean() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn usage(message: &str) -> ExitCode {
    eprintln!("cc-lint: {message}");
    eprintln!("usage: cc-lint [--root PATH] [--deny] [--quiet]");
    ExitCode::from(2)
}
