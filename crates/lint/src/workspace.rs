//! Workspace file discovery: which sources the pass owns.
//!
//! The pass lints the workspace's *own* code — `src/`, `crates/`,
//! `tests/`, `examples/` under the root — and deliberately skips
//! `vendor/` (offline stand-ins for crates.io dependencies, not ours to
//! police), `target/`, and anything hidden. Paths come back sorted and
//! `/`-separated so reports, JSON artifacts, and the self-check test are
//! byte-stable across platforms and filesystem orders.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Top-level directories the pass scans, in report order.
const SCAN_DIRS: [&str; 4] = ["crates", "examples", "src", "tests"];

/// Directory names never descended into, at any depth.
const SKIP_DIRS: [&str; 2] = ["target", "vendor"];

/// All workspace-owned `.rs` files under `root`, as sorted
/// workspace-relative `/`-separated paths.
pub fn workspace_sources(root: &Path) -> io::Result<Vec<String>> {
    let mut out = Vec::new();
    for dir in SCAN_DIRS {
        let path = root.join(dir);
        if path.is_dir() {
            collect(&path, root, &mut out)?;
        }
    }
    out.sort();
    Ok(out)
}

fn collect(dir: &Path, root: &Path, out: &mut Vec<String>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            collect(&path, root, out)?;
        } else if name.ends_with(".rs") {
            out.push(relative(root, &path));
        }
    }
    Ok(())
}

/// `path` relative to `root`, `/`-separated.
fn relative(root: &Path, path: &Path) -> String {
    let rel: PathBuf = path.strip_prefix(root).unwrap_or(path).to_path_buf();
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

/// Walks upward from `start` to the directory whose `Cargo.toml` declares
/// `[workspace]` — the root the pass runs against when none is given.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_this_workspace_and_skips_vendor() {
        let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
            .expect("workspace root above crates/lint");
        let sources = workspace_sources(&root).unwrap();
        assert!(sources.iter().any(|p| p == "crates/lint/src/workspace.rs"));
        assert!(sources.iter().any(|p| p.starts_with("tests/")));
        assert!(!sources.iter().any(|p| p.starts_with("vendor/")));
        assert!(!sources.iter().any(|p| p.contains("/target/")));
        let mut sorted = sources.clone();
        sorted.sort();
        assert_eq!(sources, sorted);
    }
}
