//! End-to-end fixtures: sources seeded with one violation per line,
//! annotated rustc-UI-style.
//!
//! Each seeded violation line ends in a `//~ rule_name` marker; the test
//! extracts the `(line, rule)` set from the markers and requires the
//! scanner's findings to be *exactly* that set — every seeded violation is
//! flagged (the acceptance bar is 100%), and nothing else is.

use std::collections::BTreeSet;

use cc_lint::scan_source;

/// The `(line, rule)` pairs the fixture's `//~` markers declare.
fn expected(src: &str) -> BTreeSet<(u32, String)> {
    src.lines()
        .enumerate()
        .filter_map(|(i, line)| {
            let at = line.rfind("//~ ")?;
            Some((i as u32 + 1, line[at + 4..].trim().to_string()))
        })
        .collect()
}

/// The `(line, rule)` pairs the scanner actually flagged.
fn flagged(path: &str, src: &str) -> BTreeSet<(u32, String)> {
    scan_source(path, src)
        .findings
        .iter()
        .map(|f| (f.line, f.rule.name().to_string()))
        .collect()
}

fn check(path: &str, src: &str) {
    let expected = expected(src);
    assert!(
        !expected.is_empty(),
        "fixture has no //~ markers — nothing would be tested"
    );
    assert_eq!(flagged(path, src), expected);
}

/// A hot-module fixture exercising all four rule families plus pragma
/// diagnostics in one file.
#[test]
fn hot_module_fixture_flags_every_seeded_violation() {
    let src = r#"use std::collections::HashMap; //~ determinism
use std::collections::HashSet; //~ determinism
use std::time::SystemTime; //~ determinism

fn clock(v: &[u8]) -> usize {
    let t = std::time::Instant::now(); //~ determinism
    let id = std::thread::current().id(); //~ determinism
    let a = v.as_ptr() as usize; //~ determinism
    let b = &t as *const _ as u64; //~ determinism
    a
}

// cc-lint: region(no_alloc)
fn hot(xs: &[u32]) -> usize {
    let mut v = Vec::new(); //~ no_alloc
    let doubled: Vec<u32> = xs.iter().map(|x| x * 2).collect(); //~ no_alloc
    let s = format!("{}", xs.len()); //~ no_alloc
    let b = Box::new(3u32); //~ no_alloc
    let c = xs.to_vec(); //~ no_alloc
    let d = vec![1, 2]; //~ no_alloc
    v.len() + doubled.len() + s.len() + b.count_ones() as usize + c.len() + d.len()
}
// cc-lint: end_region

fn cold() -> Vec<u32> {
    Vec::new()
}

fn raw(p: *const u32) -> u32 {
    unsafe { *p } //~ unsafe_audit
}

fn justified(p: *const u32) -> u32 {
    // SAFETY: fixture — caller guarantees p is valid.
    unsafe { *p }
}

fn widen(w: u32) -> bool {
    let bits_limit = 16; //~ model_conformance
    w > bits_limit
}

// cc-lint: alow(determinism) - typo //~ pragma
// cc-lint: allow(no_such_rule) - why //~ pragma
// cc-lint: region(no_alloc) //~ pragma
"#;
    let path = "crates/runtime/src/router.rs";
    check(path, src);

    // Both unsafes are inventoried; only the justified one carries text.
    let scan = scan_source(path, src);
    assert_eq!(scan.unsafe_sites.len(), 2);
    assert_eq!(scan.unsafe_sites[0].justification, None);
    assert!(scan.unsafe_sites[1]
        .justification
        .as_deref()
        .unwrap()
        .contains("caller guarantees"));
}

/// Determinism scoping: outside the hot modules, only `NodeProgram` impl
/// bodies are checked.
#[test]
fn node_program_fixture_scopes_determinism_to_the_impl() {
    let src = r#"use std::collections::HashMap;

struct P;

impl NodeProgram for P {
    fn on_round(&mut self) {
        let m: HashMap<u32, u32> = HashMap::default(); //~ determinism
        let _ = m;
    }
}

fn helper() -> HashMap<u32, u32> {
    HashMap::default()
}
"#;
    check("crates/mis/src/program.rs", src);
}

/// An `allow` pragma moves the finding to the suppressed list instead of
/// silencing it entirely.
#[test]
fn allowed_findings_are_suppressed_not_lost() {
    let src =
        "use std::collections::HashMap; // cc-lint: allow(determinism) — fixture: on purpose\n";
    let scan = scan_source("crates/runtime/src/router.rs", src);
    assert!(scan.findings.is_empty());
    assert_eq!(scan.suppressed.len(), 1);
    assert_eq!(scan.suppressed[0].line, 1);
}
