//! Property: rule-triggering text that appears only inside string
//! literals, raw strings, byte strings, and comments never produces a
//! finding.
//!
//! This is the lexer's whole reason to exist — a regex-grep lint would trip
//! over every one of these. The generator assembles a hot-module source
//! (so all four token rules are live, with a `no_alloc` region around the
//! body) whose only occurrences of dangerous tokens are quoted or
//! commented, and requires a completely clean scan.

use proptest::collection::vec;
use proptest::prelude::*;

use cc_lint::scan_source;

/// Fragments that would each be a finding if they appeared as code in a
/// hot module inside a `no_alloc` region.
const PAYLOADS: [&str; 10] = [
    "HashMap::new()",
    "HashSet::default()",
    "std::time::Instant::now()",
    "std::thread::current().id()",
    "v.as_ptr() as usize",
    "Vec::new()",
    "xs.iter().collect()",
    "format!",
    "unsafe { *ptr }",
    "let bits_limit = 16",
];

/// The neutralizing containers. Everything the payload could trigger is
/// token-based, so wrapping it in a non-code token must silence it.
const CONTAINERS: usize = 4;

fn contain(container: usize, payload: &str, i: usize) -> String {
    match container {
        0 => format!("    let _s{i} = \"{payload}\";"),
        1 => format!("    let _r{i} = r#\"{payload}\"#;"),
        2 => format!("    // {payload}"),
        _ => format!("    /* {payload} */ let _c{i} = 0;"),
    }
}

/// Assembles the scanned source: a `no_alloc` region around a function
/// whose body is the generated container lines.
fn assemble(picks: &[(usize, usize)]) -> String {
    let mut src = String::from("// cc-lint: region(no_alloc)\nfn fixture() {\n");
    for (i, &(payload, container)) in picks.iter().enumerate() {
        src.push_str(&contain(container, PAYLOADS[payload], i));
        src.push('\n');
    }
    src.push_str("}\n// cc-lint: end_region\n");
    src
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn quoted_and_commented_tokens_never_produce_findings(
        picks in vec((0usize..PAYLOADS.len(), 0usize..CONTAINERS), 0..24)
    ) {
        let src = assemble(&picks);
        let scan = scan_source("crates/runtime/src/router.rs", &src);
        prop_assert!(
            scan.findings.is_empty(),
            "findings on quoted/commented tokens:\n{:?}\nsource:\n{}",
            scan.findings,
            src
        );
        prop_assert!(scan.suppressed.is_empty());
        prop_assert!(scan.unsafe_sites.is_empty(), "inventoried a quoted `unsafe`");
    }
}

/// Pragma text inside a string must neither open a region nor suppress
/// anything: the `Vec::new` after it stays legal because no region is
/// actually open.
#[test]
fn pragma_text_inside_strings_is_inert() {
    let src = "fn f() -> Vec<u32> {\n    let s = \"// cc-lint: region(no_alloc)\";\n    let _ = s;\n    Vec::new()\n}\n";
    let scan = scan_source("crates/runtime/src/router.rs", src);
    assert!(scan.findings.is_empty(), "{:?}", scan.findings);
    assert!(scan.suppressed.is_empty());
}
