//! # Congested Clique Coloring
//!
//! Umbrella crate for the reproduction of *Simple, Deterministic,
//! Constant-Round Coloring in the Congested Clique* (Czumaj, Davies, Parter;
//! PODC 2020). It re-exports the workspace crates so that examples and
//! downstream users can depend on a single package.
//!
//! ```
//! use congested_clique_coloring::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let graph = GraphBuilder::cycle(8).build();
//! let instance = ListColoringInstance::delta_plus_one(&graph)?;
//! let outcome = ColorReduce::new(ColorReduceConfig::default())
//!     .run(&instance, ExecutionModel::congested_clique(graph.node_count()))?;
//! outcome.coloring().verify(&instance)?;
//! # Ok(())
//! # }
//! ```

pub use cc_derand as derand;
pub use cc_graph as graph;
pub use cc_hash as hash;
pub use cc_mis as mis;
pub use cc_runtime as runtime;
pub use cc_sim as sim;
pub use clique_coloring as coloring;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use cc_graph::{
        builder::GraphBuilder, coloring::Coloring, csr::CsrGraph, generators,
        instance::ListColoringInstance, palette::Palette, Color, NodeId,
    };
    pub use cc_runtime::{Engine, EngineConfig, EngineOutcome, NodeEnv, NodeProgram, NodeStatus};
    pub use cc_sim::{model::ExecutionModel, report::ExecutionReport};
    pub use clique_coloring::{
        baselines,
        color_reduce::{ColorReduce, ColorReduceConfig, ColorReduceOutcome},
        low_space::{LowSpaceColorReduce, LowSpaceConfig},
    };
}
