//! Collection strategies (`proptest::collection::vec`).

use std::ops::{Range, RangeInclusive};

use crate::{Strategy, TestRng};

/// Ranges usable as a length specification for [`vec`].
pub trait SizeRange {
    /// Samples a length from the range.
    fn sample_len(&self, rng: &mut TestRng) -> usize;
}

impl SizeRange for Range<usize> {
    fn sample_len(&self, rng: &mut TestRng) -> usize {
        assert!(self.start < self.end, "empty length range");
        self.start + rng.below((self.end - self.start) as u64) as usize
    }
}

impl SizeRange for RangeInclusive<usize> {
    fn sample_len(&self, rng: &mut TestRng) -> usize {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty length range");
        lo + rng.below((hi - lo + 1) as u64) as usize
    }
}

impl SizeRange for usize {
    fn sample_len(&self, _rng: &mut TestRng) -> usize {
        *self
    }
}

/// Strategy for `Vec<T>` with lengths drawn from `size`.
pub struct VecStrategy<S, L> {
    element: S,
    size: L,
}

impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = self.size.sample_len(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Generates vectors whose elements come from `element` and whose lengths
/// come from `size`.
pub fn vec<S: Strategy, L: SizeRange>(element: S, size: L) -> VecStrategy<S, L> {
    VecStrategy { element, size }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_lengths_in_range() {
        let mut rng = TestRng::deterministic("vec");
        let strategy = vec(0u64..10, 2..5usize);
        for _ in 0..200 {
            let v = strategy.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }
}
