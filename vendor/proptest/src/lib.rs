//! Offline, vendored property-testing harness exposing the subset of the
//! `proptest` API this workspace's tests use.
//!
//! The build environment has no crates.io access, so this crate stands in
//! for `proptest`: the [`proptest!`] macro, the [`Strategy`] trait with
//! `prop_map`/`prop_flat_map`, range and tuple strategies, [`any`],
//! [`collection::vec`], and the `prop_assert*` macros. Differences from the
//! real crate: case generation is driven by a fixed deterministic PRNG
//! seeded from the test name (runs are reproducible, there is no
//! persistence file), and failing cases are reported but **not shrunk**.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

pub mod collection;

/// Everything a test module normally imports.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Deterministic PRNG used to generate test cases: a ChaCha8 stream (from
/// the workspace's vendored `rand_chacha`) seeded from the test name, so
/// each property gets a stable, independent case sequence.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: rand_chacha::ChaCha8Rng,
}

impl TestRng {
    /// A generator seeded deterministically from a label (the test name).
    pub fn deterministic(label: &str) -> Self {
        // FNV-1a over the label gives a stable per-test seed.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in label.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            inner: rand::SeedableRng::seed_from_u64(hash),
        }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        rand::RngCore::next_u64(&mut self.inner)
    }

    /// Uniform value in `[0, span)`; `span` must be positive.
    pub fn below(&mut self, span: u64) -> u64 {
        assert!(span > 0);
        rand::Rng::gen_range(&mut self.inner, 0..span)
    }
}

/// Error type carried by `prop_assert*` failures.
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Display::fmt(&self.0, f)
    }
}

/// Runner configuration. Only `cases` is interpreted.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A recipe for generating values of an output type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { base: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { base: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.base.generate(rng))
    }
}

/// Strategy adapter produced by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.base.generate(rng)).generate(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64) - (self.start as u64);
                self.start + rng.below(span) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64) - (lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy!((A)(A, B)(A, B, C)(A, B, C, D));

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as u32
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> Self {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}

/// The strategy returned by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy producing arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Asserts a condition inside a property, failing the case (not panicking
/// directly) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError(format!($($fmt)*)));
        }
    };
}

/// `prop_assert!` for equality, printing both sides on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
}

/// `prop_assert!` for inequality, printing both sides on failure.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over `config.cases` generated
/// inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        $config:expr;
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::TestRng::deterministic(stringify!($name));
                $(let $arg = $strategy;)+
                for case in 0..config.cases {
                    let result: ::std::result::Result<(), $crate::TestCaseError> = {
                        $(let $arg = $crate::Strategy::generate(&$arg, &mut rng);)+
                        (|| { $body ::std::result::Result::Ok(()) })()
                    };
                    if let ::std::result::Result::Err(e) = result {
                        panic!(
                            "property `{}` failed on case {}/{}:\n{}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            e
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::deterministic("ranges");
        for _ in 0..500 {
            let a = (3usize..9).generate(&mut rng);
            assert!((3..9).contains(&a));
            let b = (1u64..=4).generate(&mut rng);
            assert!((1..=4).contains(&b));
        }
    }

    #[test]
    fn map_and_flat_map_compose() {
        let mut rng = TestRng::deterministic("compose");
        let strategy = (1usize..5)
            .prop_flat_map(|n| (0..n, 0..n))
            .prop_map(|(a, b)| a + b);
        for _ in 0..100 {
            assert!(strategy.generate(&mut rng) <= 6);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_generated_property(x in 0u64..100, pair in (0usize..10, 0usize..10)) {
            prop_assert!(x < 100);
            prop_assert_eq!(pair.0 + pair.1, pair.1 + pair.0);
            prop_assert_ne!(pair.0, pair.0 + 1);
        }
    }
}
