//! Offline, vendored stand-in for the crates.io `threadpool` crate exposing
//! the subset of its 1.8 API this workspace uses.
//!
//! The build environment has no crates.io access, so this crate provides the
//! classic shared-queue thread pool under the upstream name: a fixed set of
//! worker threads popping boxed jobs off a mutex-protected deque. The
//! differences from the real crate are deliberate simplifications: there is
//! no `set_num_threads` resizing, no per-pool thread stack-size control, and
//! `Builder` supports only the name and thread-count knobs.
//!
//! Scheduling is chunk-greedy rather than work-stealing: whichever worker
//! wakes first takes the next queued job, so many small jobs balance load
//! across workers automatically. Callers that need deterministic *results*
//! must make job effects commutative (for example by writing to disjoint
//! slots and merging in a fixed order afterwards) — that is exactly how
//! `cc-runtime` uses this pool.

#![warn(missing_docs)]

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// State shared between pool handles and worker threads.
struct Shared {
    queue: Mutex<QueueState>,
    /// Signalled when a job is pushed or the pool shuts down.
    job_available: Condvar,
    /// Signalled when a worker finishes a job (for `join`).
    job_done: Condvar,
    /// Number of live pool handles (clones of `ThreadPool`).
    handles: AtomicUsize,
    /// Number of jobs that panicked.
    panics: AtomicUsize,
    /// Number of worker threads.
    max_count: usize,
}

struct QueueState {
    jobs: VecDeque<Job>,
    /// Jobs currently executing on some worker.
    active: usize,
    /// Set when the last pool handle is dropped.
    shutdown: bool,
}

/// A fixed-size pool of worker threads executing boxed jobs from a shared
/// queue.
///
/// Cloning the pool produces another handle to the same workers. When the
/// last handle is dropped the workers finish the queued jobs and exit; the
/// threads are detached, matching the upstream crate.
pub struct ThreadPool {
    shared: Arc<Shared>,
}

impl ThreadPool {
    /// Creates a pool with `num_threads` workers.
    ///
    /// # Panics
    ///
    /// Panics if `num_threads` is zero.
    pub fn new(num_threads: usize) -> ThreadPool {
        Builder::new().num_threads(num_threads).build()
    }

    /// Creates a pool whose worker threads carry `name`.
    ///
    /// # Panics
    ///
    /// Panics if `num_threads` is zero.
    pub fn with_name(name: String, num_threads: usize) -> ThreadPool {
        Builder::new()
            .thread_name(name)
            .num_threads(num_threads)
            .build()
    }

    /// Queues `job` for execution on some worker thread.
    pub fn execute<F>(&self, job: F)
    where
        F: FnOnce() + Send + 'static,
    {
        let mut state = self.shared.queue.lock().unwrap();
        state.jobs.push_back(Box::new(job));
        drop(state);
        self.shared.job_available.notify_one();
    }

    /// Blocks until every queued job has finished executing.
    pub fn join(&self) {
        let mut state = self.shared.queue.lock().unwrap();
        while !state.jobs.is_empty() || state.active > 0 {
            state = self.shared.job_done.wait(state).unwrap();
        }
    }

    /// Number of jobs currently executing.
    pub fn active_count(&self) -> usize {
        self.shared.queue.lock().unwrap().active
    }

    /// Number of jobs queued but not yet started.
    pub fn queued_count(&self) -> usize {
        self.shared.queue.lock().unwrap().jobs.len()
    }

    /// Number of worker threads in the pool.
    pub fn max_count(&self) -> usize {
        self.shared.max_count
    }

    /// Number of jobs that panicked so far.
    pub fn panic_count(&self) -> usize {
        self.shared.panics.load(Ordering::SeqCst)
    }
}

impl Clone for ThreadPool {
    fn clone(&self) -> Self {
        self.shared.handles.fetch_add(1, Ordering::SeqCst);
        ThreadPool {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        if self.shared.handles.fetch_sub(1, Ordering::SeqCst) == 1 {
            let mut state = self.shared.queue.lock().unwrap();
            state.shutdown = true;
            drop(state);
            self.shared.job_available.notify_all();
        }
    }
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("max_count", &self.shared.max_count)
            .field("queued_count", &self.queued_count())
            .field("active_count", &self.active_count())
            .finish()
    }
}

/// Configures and builds a [`ThreadPool`].
#[derive(Debug, Clone, Default)]
pub struct Builder {
    num_threads: Option<usize>,
    thread_name: Option<String>,
}

impl Builder {
    /// A builder with all knobs unset.
    pub fn new() -> Builder {
        Builder::default()
    }

    /// Sets the number of worker threads (default: available parallelism).
    pub fn num_threads(mut self, num_threads: usize) -> Builder {
        self.num_threads = Some(num_threads);
        self
    }

    /// Sets the name of the worker threads.
    pub fn thread_name(mut self, name: String) -> Builder {
        self.thread_name = Some(name);
        self
    }

    /// Builds the pool and spawns its workers.
    ///
    /// # Panics
    ///
    /// Panics if the configured thread count is zero.
    pub fn build(self) -> ThreadPool {
        let num_threads = self.num_threads.unwrap_or_else(|| {
            thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        });
        assert!(num_threads > 0, "a thread pool needs at least one thread");
        let shared = Arc::new(Shared {
            queue: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                active: 0,
                shutdown: false,
            }),
            job_available: Condvar::new(),
            job_done: Condvar::new(),
            handles: AtomicUsize::new(1),
            panics: AtomicUsize::new(0),
            max_count: num_threads,
        });
        for i in 0..num_threads {
            let shared = Arc::clone(&shared);
            let mut builder = thread::Builder::new();
            if let Some(name) = &self.thread_name {
                builder = builder.name(format!("{name}-{i}"));
            }
            builder
                .spawn(move || worker_loop(&shared))
                .expect("failed to spawn pool worker");
        }
        ThreadPool { shared }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut state = shared.queue.lock().unwrap();
            loop {
                if let Some(job) = state.jobs.pop_front() {
                    state.active += 1;
                    break job;
                }
                if state.shutdown {
                    return;
                }
                state = shared.job_available.wait(state).unwrap();
            }
        };
        if catch_unwind(AssertUnwindSafe(job)).is_err() {
            shared.panics.fetch_add(1, Ordering::SeqCst);
        }
        let mut state = shared.queue.lock().unwrap();
        state.active -= 1;
        drop(state);
        shared.job_done.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn executes_all_jobs() {
        let pool = ThreadPool::new(4);
        let counter = Arc::new(AtomicU64::new(0));
        for i in 0..100u64 {
            let counter = Arc::clone(&counter);
            pool.execute(move || {
                counter.fetch_add(i, Ordering::SeqCst);
            });
        }
        pool.join();
        assert_eq!(counter.load(Ordering::SeqCst), (0..100).sum::<u64>());
        assert_eq!(pool.active_count(), 0);
        assert_eq!(pool.queued_count(), 0);
        assert_eq!(pool.max_count(), 4);
    }

    #[test]
    fn join_with_no_jobs_returns_immediately() {
        let pool = ThreadPool::new(2);
        pool.join();
    }

    #[test]
    fn jobs_run_concurrently_across_workers() {
        // Two jobs that each wait for the other can only finish if they run
        // on different workers.
        let pool = ThreadPool::new(2);
        let barrier = Arc::new(std::sync::Barrier::new(2));
        for _ in 0..2 {
            let barrier = Arc::clone(&barrier);
            pool.execute(move || {
                barrier.wait();
            });
        }
        pool.join();
    }

    #[test]
    fn panicking_jobs_are_counted_and_do_not_kill_the_pool() {
        let pool = ThreadPool::new(1);
        pool.execute(|| panic!("boom"));
        pool.join();
        assert_eq!(pool.panic_count(), 1);
        let ran = Arc::new(AtomicU64::new(0));
        let ran2 = Arc::clone(&ran);
        pool.execute(move || {
            ran2.store(1, Ordering::SeqCst);
        });
        pool.join();
        assert_eq!(ran.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn clone_shares_the_same_workers() {
        let pool = ThreadPool::new(2);
        let clone = pool.clone();
        assert_eq!(clone.max_count(), 2);
        let counter = Arc::new(AtomicU64::new(0));
        let c = Arc::clone(&counter);
        clone.execute(move || {
            c.fetch_add(1, Ordering::SeqCst);
        });
        pool.join();
        assert_eq!(counter.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn with_name_names_threads() {
        let pool = ThreadPool::with_name("cc-runtime".into(), 1);
        let name = Arc::new(Mutex::new(String::new()));
        let n = Arc::clone(&name);
        pool.execute(move || {
            *n.lock().unwrap() = thread::current().name().unwrap_or("").to_string();
        });
        pool.join();
        assert!(name.lock().unwrap().starts_with("cc-runtime"));
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_is_rejected() {
        let _ = ThreadPool::new(0);
    }
}
