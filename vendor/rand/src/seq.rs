//! Sequence-related helpers: shuffling and choosing from slices.

use crate::Rng;

/// Extension trait adding random operations to slices.
pub trait SliceRandom {
    /// The element type of the sequence.
    type Item;

    /// Shuffles the sequence in place (Fisher–Yates).
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

    /// Returns a uniformly chosen reference, or `None` if empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RngCore;

    struct Lcg(u64);

    impl RngCore for Lcg {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Lcg(42);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle of 100 elements left them sorted");
    }

    #[test]
    fn choose_empty_and_nonempty() {
        let mut rng = Lcg(7);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let v = [3u8, 5, 9];
        assert!(v.contains(v.choose(&mut rng).unwrap()));
    }
}
