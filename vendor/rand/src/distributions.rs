//! Uniform sampling support for [`Rng::gen`](crate::Rng::gen) and
//! [`Rng::gen_range`](crate::Rng::gen_range).

use std::ops::{Range, RangeInclusive};

use crate::RngCore;

/// A distribution over values of type `T`.
pub trait Distribution<T> {
    /// Draws a sample using `rng` as the randomness source.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" distribution for a type: uniform over all values for
/// integers and `bool`, uniform on `[0, 1)` for floats.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

impl Distribution<u64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Distribution<u32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Distribution<usize> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        unit_f64(rng)
    }
}

/// Uniform sample from `[0, 1)` using the top 53 bits of one output word.
pub(crate) fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Unbiased uniform sample from `[0, span)` by rejection sampling.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Largest value below which `% span` is unbiased.
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

/// Types that can be sampled uniformly from a range.
pub trait SampleUniform: Sized {
    /// Uniform sample from `[low, high)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;

    /// Uniform sample from `[low, high]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as u64).wrapping_sub(low as u64);
                low.wrapping_add(uniform_below(rng, span) as $t)
            }

            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty range");
                let span = (high as u64).wrapping_sub(low as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                low.wrapping_add(uniform_below(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range: empty range");
        let sample = low + (high - low) * unit_f64(rng);
        // Guard against rounding up to the excluded endpoint.
        if sample < high {
            sample
        } else {
            low
        }
    }

    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low <= high, "gen_range: empty range");
        low + (high - low) * unit_f64(rng)
    }
}

/// Range types accepted by [`Rng::gen_range`](crate::Rng::gen_range).
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}
