//! Offline, vendored subset of the `rand` 0.8 API.
//!
//! The build environment for this workspace has no access to crates.io, so
//! the handful of `rand` items the workspace actually uses are reimplemented
//! here with the same names and signatures: [`RngCore`], [`Rng`],
//! [`SeedableRng`], and [`seq::SliceRandom`]. Uniform sampling uses unbiased
//! rejection sampling; floating-point sampling uses the standard 53-bit
//! mantissa construction. The crate is API-compatible for the call sites in
//! this repository, not a full reimplementation of `rand`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod distributions;
pub mod seq;

pub use distributions::{Distribution, Standard};

/// The core of a random number generator: a source of random words.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;

    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed type, a byte array.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with SplitMix64 the
    /// same way `rand_core` does.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 (Vigna), as used by rand_core::SeedableRng.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// User-facing convenience methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the standard distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of range");
        distributions::unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);

    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: u64 = rng.gen_range(0..5);
            assert!(y < 5);
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Counter(1);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = Counter(3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
