//! Offline, vendored micro-benchmark harness exposing the subset of the
//! `criterion` API this workspace's benches use.
//!
//! The build environment has no crates.io access, so this crate stands in
//! for `criterion`: same macros ([`criterion_group!`], [`criterion_main!`]),
//! same types ([`Criterion`], [`BenchmarkId`], [`Bencher`]), but a much
//! simpler measurement loop — a warm-up pass followed by `sample_size` timed
//! samples, reporting min/mean/max to stdout. There is no statistical
//! analysis, HTML report, or baseline comparison; the numbers are honest
//! wall-clock measurements suitable for spotting order-of-magnitude
//! regressions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Prevents the compiler from optimizing away a benchmarked value.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter, rendered `name/param`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: format!("{}/{parameter}", name.into()),
        }
    }

    /// An id carrying only a parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            name: name.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId { name }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.name.fmt(f)
    }
}

/// Timing loop handle passed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, once per sample, after one warm-up call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine());
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn report(label: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{label:<40} (no samples)");
        return;
    }
    let min = samples.iter().min().expect("non-empty");
    let max = samples.iter().max().expect("non-empty");
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    println!(
        "{label:<40} min {min:>12.3?}   mean {mean:>12.3?}   max {max:>12.3?}   ({} samples)",
        samples.len()
    );
}

/// Throughput annotation. Accepted for API compatibility; recorded but only
/// echoed in the report label.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Number of bytes processed per iteration.
    Bytes(u64),
    /// Number of elements processed per iteration.
    Elements(u64),
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, size: usize) -> &mut Self {
        self.sample_size = size.max(1);
        self
    }

    /// Sets the throughput annotation (no-op beyond API compatibility).
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    /// Runs a benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        routine(&mut bencher, input);
        report(&format!("{}/{}", self.name, id.into()), &bencher.samples);
        let _ = &self.criterion;
        self
    }

    /// Runs a benchmark without an input value.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        routine(&mut bencher);
        report(&format!("{}/{}", self.name, id.into()), &bencher.samples);
        self
    }

    /// Finishes the group (separator line in the report).
    pub fn finish(&mut self) {
        println!();
    }
}

/// The benchmark manager: entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the default number of timed samples per benchmark.
    pub fn sample_size(mut self, size: usize) -> Self {
        self.sample_size = size.max(1);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size,
        }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        routine(&mut bencher);
        report(&id.into().to_string(), &bencher.samples);
        self
    }
}

/// Declares a group of benchmark functions, mirroring `criterion`'s macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($function:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $function(&mut criterion); )+
        }
    };
}

/// Declares the benchmark `main` that runs the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_id_rendering() {
        assert_eq!(BenchmarkId::new("eval", 16).to_string(), "eval/16");
        assert_eq!(BenchmarkId::from_parameter("n300").to_string(), "n300");
    }

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion::default().sample_size(3);
        let mut group = c.benchmark_group("unit");
        group.sample_size(3);
        let mut total = 0u64;
        group.bench_function("sum", |b| {
            b.iter(|| {
                total = (0..100u64).sum();
                total
            })
        });
        group.finish();
        assert_eq!(total, 4950);
    }
}
