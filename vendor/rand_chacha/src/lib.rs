//! Offline, vendored ChaCha-based RNGs compatible with this workspace's
//! vendored `rand` traits.
//!
//! [`ChaCha8Rng`] and [`ChaCha20Rng`] run the genuine ChaCha permutation
//! (D. J. Bernstein) with 8 and 20 rounds respectively over a 256-bit key
//! derived from the seed, so the statistical quality matches the upstream
//! `rand_chacha` crate even though the exact output stream is not
//! byte-for-byte identical to it. All experiment baselines in this
//! repository are generated with these implementations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::{RngCore, SeedableRng};

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// One ChaCha block: permute the input state for `rounds` rounds and add the
/// input back in (the feed-forward that makes the permutation one-way).
fn chacha_block(input: &[u32; 16], rounds: u32) -> [u32; 16] {
    let mut state = *input;
    for _ in 0..rounds / 2 {
        // Column round.
        quarter_round(&mut state, 0, 4, 8, 12);
        quarter_round(&mut state, 1, 5, 9, 13);
        quarter_round(&mut state, 2, 6, 10, 14);
        quarter_round(&mut state, 3, 7, 11, 15);
        // Diagonal round.
        quarter_round(&mut state, 0, 5, 10, 15);
        quarter_round(&mut state, 1, 6, 11, 12);
        quarter_round(&mut state, 2, 7, 8, 13);
        quarter_round(&mut state, 3, 4, 9, 14);
    }
    for (word, &original) in state.iter_mut().zip(input.iter()) {
        *word = word.wrapping_add(original);
    }
    state
}

macro_rules! chacha_rng {
    ($(#[$doc:meta])* $name:ident, $rounds:expr) => {
        $(#[$doc])*
        #[derive(Debug, Clone)]
        pub struct $name {
            key: [u32; 8],
            counter: u64,
            buffer: [u32; 16],
            index: usize,
        }

        impl $name {
            /// The stream position, counted in 32-bit output words consumed
            /// since seeding. Restoring it with [`Self::set_word_pos`]
            /// resumes the exact output sequence, which lets callers
            /// checkpoint an RNG with one `u64` instead of its full state.
            pub fn get_word_pos(&self) -> u64 {
                // A fresh RNG has counter = 0, index = 16 (nothing consumed);
                // after each refill the counter is one block ahead of the
                // buffer being consumed.
                self.counter
                    .wrapping_mul(16)
                    .wrapping_add(self.index as u64)
                    .wrapping_sub(16)
            }

            /// Rewinds or fast-forwards the stream to a position previously
            /// returned by [`Self::get_word_pos`].
            pub fn set_word_pos(&mut self, pos: u64) {
                self.counter = pos / 16;
                self.refill();
                self.index = (pos % 16) as usize;
            }

            fn refill(&mut self) {
                let mut input = [0u32; 16];
                input[..4].copy_from_slice(&CHACHA_CONSTANTS);
                input[4..12].copy_from_slice(&self.key);
                input[12] = self.counter as u32;
                input[13] = (self.counter >> 32) as u32;
                // Nonce words stay zero: one seed = one stream.
                self.buffer = chacha_block(&input, $rounds);
                self.counter = self.counter.wrapping_add(1);
                self.index = 0;
            }
        }

        impl SeedableRng for $name {
            type Seed = [u8; 32];

            fn from_seed(seed: Self::Seed) -> Self {
                let mut key = [0u32; 8];
                for (word, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
                    *word = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
                }
                $name {
                    key,
                    counter: 0,
                    buffer: [0; 16],
                    index: 16,
                }
            }
        }

        impl RngCore for $name {
            fn next_u32(&mut self) -> u32 {
                if self.index >= 16 {
                    self.refill();
                }
                let word = self.buffer[self.index];
                self.index += 1;
                word
            }

            fn next_u64(&mut self) -> u64 {
                let lo = self.next_u32() as u64;
                let hi = self.next_u32() as u64;
                lo | (hi << 32)
            }
        }
    };
}

chacha_rng!(
    /// ChaCha with 8 rounds: the fast variant used by the experiments.
    ChaCha8Rng,
    8
);
chacha_rng!(
    /// ChaCha with 20 rounds: the conservative, full-strength variant.
    ChaCha20Rng,
    20
);

#[cfg(test)]
mod tests {
    use super::*;

    /// RFC 8439 §2.3.2 test vector for the 20-round block function.
    #[test]
    fn chacha20_block_matches_rfc8439() {
        let mut input = [0u32; 16];
        input[..4].copy_from_slice(&CHACHA_CONSTANTS);
        for (i, word) in input[4..12].iter_mut().enumerate() {
            let base = (4 * i) as u32;
            *word = u32::from_le_bytes([
                base as u8,
                (base + 1) as u8,
                (base + 2) as u8,
                (base + 3) as u8,
            ]);
        }
        input[12] = 1;
        input[13] = 0x0900_0000;
        input[14] = 0x4a00_0000;
        input[15] = 0;
        let out = chacha_block(&input, 20);
        assert_eq!(out[0], 0xe4e7_f110);
        assert_eq!(out[1], 0x1559_3bd1);
        assert_eq!(out[15], 0x4e3c_50a2);
    }

    #[test]
    fn seeded_streams_are_deterministic_and_distinct() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(1);
        let mut c = ChaCha8Rng::seed_from_u64(2);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn word_pos_round_trips_at_any_offset() {
        // Cover a fresh RNG (pos 0), mid-buffer positions, and positions
        // several blocks in — including odd offsets reached via next_u32.
        for consumed in [0usize, 1, 7, 15, 16, 17, 40, 129] {
            let mut rng = ChaCha8Rng::seed_from_u64(42);
            for _ in 0..consumed {
                rng.next_u32();
            }
            let pos = rng.get_word_pos();
            assert_eq!(pos, consumed as u64);
            let expected: Vec<u64> = (0..8).map(|_| rng.next_u64()).collect();
            let mut restored = ChaCha8Rng::seed_from_u64(42);
            restored.set_word_pos(pos);
            let replay: Vec<u64> = (0..8).map(|_| restored.next_u64()).collect();
            assert_eq!(expected, replay, "diverged after restoring pos {pos}");
        }
    }

    #[test]
    fn output_looks_balanced() {
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        let ones: u32 = (0..1000).map(|_| rng.next_u64().count_ones()).sum();
        // 64 000 bits total; expect ~32 000 set, allow a wide margin.
        assert!((30_000..34_000).contains(&ones), "ones = {ones}");
    }
}
